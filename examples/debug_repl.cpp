// Interactive debugging session over a recorded trace — the paper's
// "debugging environment for the happened-before model" in miniature.
//
//   $ example_trace_generator dining_deadlocky 3 > run.trace
//   $ example_debug_repl run.trace
//   hbct> EF(waitr@P0 == 1 && waitr@P1 == 1 && waitr@P2 == 1 && waitr@P3 == 1)
//   TRUE  [gw-weak-conjunctive]  witness <...>
//   hbct> diagram
//   hbct> stats
//   hbct> classes cs@P0 == 1 && cs@P1 == 1
//   hbct> quit
//
// Commands: any CTL query, `diagram`, `stats`, `vars`, `classes <state
// formula>`, `lint <query>`, `audit <state formula>`, `optimize <query>`,
// `opt on|off`, `trace on|off`, `trace save <file>`, `report`, `help`,
// `quit`.
// With --audit, every query runs a full pre-flight class audit and prints
// the lint findings (see DESIGN.md §9 for the warning-code catalog).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "hbct.h"

using namespace hbct;

namespace {

void help() {
  std::printf(
      "commands:\n"
      "  <ctl query>          evaluate, e.g. EF(x@P0 == 1 && y@P1 > 2)\n"
      "  classes <formula>    predicate classes + algorithm dispatch map\n"
      "  lint <query>         predicted dispatch plan + W-code findings\n"
      "  audit <formula>      verify claimed predicate classes (E-codes)\n"
      "  optimize <query>     cost-model rewrite plan + class inference\n"
      "  opt on|off           evaluate queries with optimize=kApply\n"
      "  trace on|off         span-trace subsequent queries\n"
      "  trace save <file>    write the last traced query as Chrome JSON\n"
      "  report               hbct.report/1 JSON for the last query\n"
      "  diagram              ASCII space-time diagram\n"
      "  stats                concurrency metrics (height, width, ...)\n"
      "  stat                 live process metrics (top-style table over\n"
      "                       the global registry: detections, serve.*)\n"
      "  vars                 variable names\n"
      "  help | quit\n");
}

void run_query(const Computation& c, const std::string& text, bool audit,
               bool trace, bool optimize, std::optional<DetectResult>& last) {
  DispatchOptions opt;
  if (audit) opt.audit = AuditMode::kFull;
  opt.trace = trace;
  if (optimize) opt.optimize = OptimizeMode::kApply;
  auto r = ctl::evaluate_query(c, text, opt);
  if (!r.ok) {
    std::printf("error: %s\n", r.error.c_str());
    return;
  }
  last = r.result;
  for (const RewriteStep& s : r.result.rewrites)
    std::printf("  rewrite %s\n", to_string(s).c_str());
  const char* verdict = r.result.verdict == Verdict::kUnknown
                            ? "UNKNOWN"
                            : r.result.holds() ? "TRUE" : "FALSE";
  std::printf("%s  [%s, %llu evals]\n", verdict, r.algorithm.c_str(),
              static_cast<unsigned long long>(r.result.stats.predicate_evals));
  if (!r.result.plan.empty())
    std::printf("  plan: %s\n", r.result.plan.c_str());
  if (!r.result.diagnostics.empty())
    std::printf("%s", render_diagnostics(r.result.diagnostics).c_str());
  if (r.result.witness_cut)
    std::printf("  witness cut %s\n", r.result.witness_cut->to_string().c_str());
  if (!r.result.witness_path.empty()) {
    std::printf("  witness path:");
    for (const Cut& g : r.result.witness_path)
      std::printf(" %s", g.to_string().c_str());
    std::printf("\n");
  }
  if (r.result.trace)
    std::printf("  traced: %llu spans (`report`, `trace save <file>`)\n",
                static_cast<unsigned long long>(r.result.trace->span_count()));
}

void save_chrome_trace(const std::optional<DetectResult>& last,
                       const std::string& path) {
  if (!last || !last->trace) {
    std::printf("no traced query yet (`trace on`, then run one)\n");
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  out << last->trace->chrome_trace_json() << "\n";
  std::printf("wrote %s (load via chrome://tracing or ui.perfetto.dev)\n",
              path.c_str());
}

void show_classes(const Computation& c, const std::string& text) {
  auto parsed = ctl::parse_query(text);
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return;
  }
  if (parsed.query.temporal || ctl::contains_temporal(parsed.query.root)) {
    std::printf("classes applies to state formulas (no temporal ops)\n");
    return;
  }
  const std::string err = ctl::validate_query(c, parsed.query);
  if (!err.empty()) {
    std::printf("error: %s\n", err.c_str());
    return;
  }
  auto compiled = ctl::compile_state(parsed.query.p);
  if (!compiled.ok) {
    std::printf("compile error: %s\n", compiled.error.c_str());
    return;
  }
  std::printf("%s", to_string(classify(*compiled.pred, c)).c_str());
}

void lint(const Computation& c, const std::string& text) {
  auto parsed = ctl::parse_query(text);
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return;
  }
  const auto ds = ctl::lint_query(c, parsed.query);
  if (ds.empty()) {
    std::printf("clean: every dispatch is polynomial\n");
    return;
  }
  std::printf("%s", render_diagnostics(ds).c_str());
}

/// Runs the cost-model optimizer in analysis mode: the rewrite chain it
/// would apply, the plan/cost delta, and the class-inference derivation
/// for the operand.
void show_optimize(const Computation& c, const std::string& text) {
  auto parsed = ctl::parse_query(text);
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return;
  }
  const std::string err = ctl::validate_query(c, parsed.query);
  if (!err.empty()) {
    std::printf("error: %s\n", err.c_str());
    return;
  }
  const ctl::OptimizeOutcome oc = ctl::optimize_query(c, parsed.query);
  if (!oc.changed) {
    std::printf("already optimal: %s (cost %.0f)\n", oc.plan_before.c_str(),
                oc.cost_before);
  } else {
    std::printf("plan: %s (cost %.0f) => %s (cost %.0f)\n",
                oc.plan_before.c_str(), oc.cost_before, oc.plan_after.c_str(),
                oc.cost_after);
    for (const RewriteStep& s : oc.steps)
      std::printf("  %s\n", to_string(s).c_str());
  }
  if (oc.inference.classes != 0 || oc.inference.co_classes != 0)
    std::printf("inference:\n%s", to_string(oc.inference.derivation).c_str());
}

/// Compiles a state formula and audits its claimed classes on the trace.
void audit(const Computation& c, const std::string& text) {
  auto parsed = ctl::parse_query(text);
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return;
  }
  if (parsed.query.temporal || ctl::contains_temporal(parsed.query.root)) {
    std::printf("audit applies to state formulas (no temporal ops)\n");
    return;
  }
  auto compiled = ctl::compile_state(parsed.query.p);
  if (!compiled.ok) {
    std::printf("compile error: %s\n", compiled.error.c_str());
    return;
  }
  const AuditResult r = audit_predicate(compiled.pred, c);
  std::printf("%s over %llu cuts: %s\n",
              r.exhaustive ? "exhaustive" : "sampled",
              static_cast<unsigned long long>(r.cuts_examined),
              r.ok() ? "all claimed classes verified" : "violations found");
  if (!r.ok())
    std::printf("%s", render_diagnostics(audit_diagnostics(r)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool audit_mode = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0)
      audit_mode = true;
    else if (!path)
      path = argv[i];
    else
      path = "";  // too many positionals; falls through to usage
  }
  if (!path || !*path) {
    std::fprintf(stderr, "usage: %s [--audit] <trace-file|->\n", argv[0]);
    return 64;
  }

  TraceParseResult parsed;
  if (std::strcmp(path, "-") == 0) {
    parsed = read_trace(std::cin);
    // Reopen the terminal for interaction when the trace came from a pipe.
    if (!std::freopen("/dev/tty", "r", stdin)) {
      std::fprintf(stderr, "cannot reopen tty for interactive input\n");
      return 74;
    }
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 66;
    }
    parsed = read_trace(in);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "trace error: %s\n", parsed.error.c_str());
    return 65;
  }
  const Computation& c = parsed.computation;
  std::printf("loaded: %d processes, %lld events, %lld messages "
              "(help for commands)\n",
              c.num_procs(), static_cast<long long>(c.total_events()),
              static_cast<long long>(c.num_messages()));

  std::string line;
  bool trace_mode = false;
  bool optimize_mode = false;
  std::optional<DetectResult> last;
  for (;;) {
    std::printf("hbct> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string cmd(trim(line));
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      help();
    } else if (cmd == "trace on") {
      trace_mode = true;
      std::printf("tracing on: queries keep their span tree\n");
    } else if (cmd == "trace off") {
      trace_mode = false;
      std::printf("tracing off\n");
    } else if (starts_with(cmd, "trace save ")) {
      save_chrome_trace(last, cmd.substr(11));
    } else if (cmd == "report") {
      if (!last)
        std::printf("no query yet\n");
      else
        std::printf("%s\n", report_json(*last).c_str());
    } else if (cmd == "diagram") {
      std::printf("%s", render_diagram(c).c_str());
    } else if (cmd == "stats") {
      std::printf("%s\n", analyze(c).to_string().c_str());
    } else if (cmd == "stat") {
      // In-process attach: the same table hbct_stat renders from scrape
      // files, read straight off the global registry.
      const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
      std::printf("%s", render_stat_table(snap).c_str());
      std::printf("detections: holds=%llu fails=%llu unknown=%llu\n",
                  static_cast<unsigned long long>(
                      snap.counters.count("detect.verdict.holds")
                          ? snap.counters.at("detect.verdict.holds") : 0),
                  static_cast<unsigned long long>(
                      snap.counters.count("detect.verdict.fails")
                          ? snap.counters.at("detect.verdict.fails") : 0),
                  static_cast<unsigned long long>(
                      snap.counters.count("detect.verdict.unknown")
                          ? snap.counters.at("detect.verdict.unknown") : 0));
    } else if (cmd == "vars") {
      for (VarId v = 0; v < c.num_vars(); ++v)
        std::printf("%s ", c.var_name(v).c_str());
      std::printf("\n");
    } else if (starts_with(cmd, "classes ")) {
      show_classes(c, cmd.substr(8));
    } else if (starts_with(cmd, "lint ")) {
      lint(c, cmd.substr(5));
    } else if (starts_with(cmd, "audit ")) {
      audit(c, cmd.substr(6));
    } else if (starts_with(cmd, "optimize ")) {
      show_optimize(c, cmd.substr(9));
    } else if (cmd == "opt on") {
      optimize_mode = true;
      std::printf("optimizer on: queries run with optimize=kApply\n");
    } else if (cmd == "opt off") {
      optimize_mode = false;
      std::printf("optimizer off\n");
    } else {
      run_query(c, cmd, audit_mode, trace_mode, optimize_mode, last);
    }
  }
  return 0;
}
