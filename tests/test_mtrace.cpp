// hbct-mtrace round-trip, zero-copy, and differential guarantees.
//
//   1. Round-trip property: every sim workload, every corpus scenario,
//      random computations, and the degenerate edges (no events, single
//      process, zero processes) survive text -> btrace -> mtrace -> view
//      with the canonical text form and the mtrace bytes as fixpoints.
//   2. Zero-copy: loading a trace two orders of magnitude larger performs
//      no additional heap allocations (the loader is O(procs + vars)
//      allocations, never per-event) — counted by tests/alloc_hook.cpp.
//   3. Differential: detection over an owning Computation and over the
//      zero-copy view of its mtrace bytes is bit-identical — verdict,
//      bound, algorithm, every stats counter, witness cut and path — across
//      seeds, budgets, and every parallelism width.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "alloc_hook.h"
#include "corpus/scenario.h"
#include "detect/dispatch.h"
#include "poset/builder.h"
#include "poset/generate.h"
#include "poset/mtrace.h"
#include "poset/trace_io.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/equilevel.h"
#include "predicate/local.h"
#include "predicate/relational.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

/// The full fixpoint battery: mtrace bytes reload to a view that reprints
/// identical bytes and an identical canonical text form, the materialized
/// deep copy agrees, and the text/btrace round-trips commute with mtrace.
void expect_roundtrip(const Computation& c, const char* what) {
  SCOPED_TRACE(what);
  const std::string bytes = mtrace_to_string(c);
  const std::string text = trace_to_string(c);

  MtraceLoadResult r = mtrace_from_bytes(bytes);
  ASSERT_TRUE(r.ok) << to_string(r.code) << ": " << r.error;
  EXPECT_EQ(mtrace_to_string(r.computation), bytes);
  EXPECT_EQ(trace_to_string(r.computation), text);
  EXPECT_EQ(trace_to_string(r.computation.materialize()), text);
  EXPECT_EQ(r.computation.total_events(), c.total_events());
  EXPECT_EQ(r.computation.num_messages(), c.num_messages());

  const TraceParseResult t = trace_from_string(text);
  ASSERT_TRUE(t.ok) << t.error;
  EXPECT_EQ(mtrace_to_string(t.computation), bytes);

  const TraceParseResult b =
      trace_from_binary_string(trace_to_binary_string(c));
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(mtrace_to_string(b.computation), bytes);
}

TEST(MtraceRoundTrip, SimWorkloads) {
  sim::SimOptions so;
  so.seed = 7;
  const auto run = [&](sim::Simulator s) { return std::move(s).run(so); };
  expect_roundtrip(run(sim::make_token_mutex(4, 2, false)), "token_mutex");
  expect_roundtrip(run(sim::make_token_mutex(4, 2, true)),
                   "token_mutex_bug");
  expect_roundtrip(run(sim::make_ra_mutex(3, 2)), "ra_mutex");
  expect_roundtrip(run(sim::make_leader_election(5)), "leader_election");
  expect_roundtrip(run(sim::make_token_ring(4, 3)), "token_ring");
  expect_roundtrip(run(sim::make_producer_consumer(6, 2)),
                   "producer_consumer");
  expect_roundtrip(run(sim::make_barrier(4, 3)), "barrier");
  expect_roundtrip(run(sim::make_random_mixer(4, 8, 2, 0.4)),
                   "random_mixer");
  expect_roundtrip(run(sim::make_alternating_bit(5, 0.2)),
                   "alternating_bit");
  expect_roundtrip(run(sim::make_two_phase_commit(4, 3, 0.3, false)),
                   "two_phase_commit");
  expect_roundtrip(run(sim::make_chandy_lamport(4, 6, 3)),
                   "chandy_lamport");
  expect_roundtrip(run(sim::make_dining_philosophers(3, 2, true)),
                   "dining");
}

TEST(MtraceRoundTrip, CorpusScenarios) {
  corpus::CorpusOptions o;
  o.procs = 5;
  o.scale = 3;
  for (const corpus::ScenarioSpec& spec : corpus::scenario_registry())
    expect_roundtrip(spec.build(o).computation, spec.name);
}

TEST(MtraceRoundTrip, RandomComputations) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GenOptions g;
    g.num_procs = 2 + static_cast<std::int32_t>(seed % 4);
    g.events_per_proc = 3 + static_cast<std::int32_t>(seed % 6);
    g.seed = seed;
    expect_roundtrip(generate_random(g), "random");
  }
}

TEST(MtraceRoundTrip, Edges) {
  // The minimal trace: one process, no events (ComputationBuilder asserts
  // num_procs > 0, so this is the empty-trace floor of the format).
  expect_roundtrip(ComputationBuilder(1).build(), "one_proc_empty");
  // Processes but no events.
  expect_roundtrip(ComputationBuilder(4).build(), "no_events");
  // Single process, internal-only, with writes, labels and initials.
  {
    ComputationBuilder b(1);
    const VarId x = b.var("x");
    b.set_initial(0, x, -7);
    b.internal(0);
    b.write(0, x, 1);
    b.label(0, "first");
    b.internal(0);
    b.write(0, x, 2);
    expect_roundtrip(std::move(b).build(), "single_proc");
  }
  // A message still in flight at the final cut.
  {
    ComputationBuilder b(2);
    b.send(0, 1);
    b.internal(1);
    expect_roundtrip(std::move(b).build(), "in_flight");
  }
}

// ---- Zero-copy allocation bound ---------------------------------------------

TEST(MtraceZeroCopy, NoPerEventAllocationsOnLoad) {
  const auto build_bytes = [](std::int32_t scale) {
    corpus::CorpusOptions o;
    o.procs = 8;
    o.scale = scale;
    return mtrace_to_string(corpus::mpi_alltoall(o).computation);
  };
  // 8 procs x 2 events/round: 640 events vs 64000 events, same procs/vars.
  const std::string small = build_bytes(40);
  const std::string big = build_bytes(4000);
  ASSERT_GT(big.size(), small.size() * 50);

  const std::string dir = ::testing::TempDir();
  const std::string small_path = dir + "/hbct_small.mtrace";
  const std::string big_path = dir + "/hbct_big.mtrace";
  const auto dump = [](const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    return static_cast<bool>(out);
  };
  ASSERT_TRUE(dump(small_path, small));
  ASSERT_TRUE(dump(big_path, big));

  std::uint64_t small_allocs = 0, big_allocs = 0;
  {
    testhooks::AllocCountScope scope;
    MtraceLoadResult r = load_mtrace(small_path, MtraceMode::kMap);
    small_allocs = scope.count();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.computation.total_events(), 640);
  }
  {
    testhooks::AllocCountScope scope;
    MtraceLoadResult r = load_mtrace(big_path, MtraceMode::kMap);
    big_allocs = scope.count();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.computation.total_events(), 64000);
  }
  // The loader allocates O(procs + vars) bookkeeping; 100x the events must
  // not add allocations (a small slack absorbs allocator-internal noise).
  EXPECT_GT(small_allocs, 0u);
  EXPECT_LE(big_allocs, small_allocs + 8)
      << "view-mode load allocates per event";

  std::remove(small_path.c_str());
  std::remove(big_path.c_str());
}

// ---- Differential: owning vs zero-copy view ---------------------------------

struct DiffQuery {
  const char* name;
  Op op;
  PredicatePtr p;
};

std::vector<DiffQuery> differential_queries(std::int32_t n) {
  std::vector<DiffQuery> qs;
  qs.push_back({"ef-conj", Op::kEF,
                make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 5),
                                  var_cmp(1, "v1", Cmp::kGe, 3)})});
  qs.push_back({"ag-disj", Op::kAG,
                make_disjunctive({var_cmp(0, "v0", Cmp::kLe, 7),
                                  var_cmp(1, "v0", Cmp::kLe, 7)})});
  qs.push_back({"ef-channel", Op::kEF, channel_bound_ge(0, 1, 1)});
  qs.push_back({"ag-channel", Op::kAG, channel_bound_le(1, 0, 2)});
  qs.push_back({"ag-rel", Op::kAG, diff_le({0, "v0"}, {1, "v0"}, 4)});
  qs.push_back({"af-stable", Op::kAF, make_terminated()});
  {
    std::vector<LocalPredicatePtr> locals;
    for (ProcId i = 0; i < n; ++i) locals.push_back(progress_ge(i, 2));
    qs.push_back({"ef-equilevel", Op::kEF,
                  make_equilevel(make_conjunctive(std::move(locals)))});
  }
  qs.push_back({"eg-local", Op::kEG, var_cmp(0, "v0", Cmp::kGe, 0)});
  return qs;
}

void expect_same_result(const DetectResult& a, const DetectResult& b,
                        const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.bound, b.bound);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.stats.predicate_evals, b.stats.predicate_evals);
  EXPECT_EQ(a.stats.cut_steps, b.stats.cut_steps);
  EXPECT_EQ(a.stats.lattice_nodes, b.stats.lattice_nodes);
  EXPECT_EQ(a.stats.lattice_edges, b.stats.lattice_edges);
  EXPECT_EQ(a.stats.eval_incremental, b.stats.eval_incremental);
  EXPECT_EQ(a.stats.eval_fallback, b.stats.eval_fallback);
  EXPECT_EQ(a.witness_cut.has_value(), b.witness_cut.has_value());
  if (a.witness_cut && b.witness_cut)
    EXPECT_EQ(*a.witness_cut, *b.witness_cut);
  EXPECT_EQ(a.witness_path, b.witness_path);
}

class MtraceDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MtraceDifferential, OwningAndViewDetectBitIdentically) {
  const std::uint64_t seed = GetParam();
  GenOptions g;
  g.num_procs = 2 + static_cast<std::int32_t>(seed % 4);
  g.events_per_proc = 4 + static_cast<std::int32_t>(seed % 5);
  g.num_vars = 2;
  g.seed = seed;
  const Computation own = generate_random(g);

  MtraceLoadResult r = mtrace_from_bytes(mtrace_to_string(own));
  ASSERT_TRUE(r.ok) << r.error;
  const Computation& view = r.computation;

  const std::size_t widths[] = {1, 2, 0};
  for (const DiffQuery& q : differential_queries(g.num_procs)) {
    for (const std::size_t width : widths) {
      DispatchOptions opt;
      opt.parallelism = width;
      expect_same_result(detect(own, q.op, q.p, nullptr, opt),
                         detect(view, q.op, q.p, nullptr, opt), q.name);
    }
    // Tight budget: the bounded verdict and partial work must agree too.
    DispatchOptions tight;
    tight.budget.max_work = 1 + seed % 23;
    expect_same_result(detect(own, q.op, q.p, nullptr, tight),
                       detect(view, q.op, q.p, nullptr, tight), q.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MtraceDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- File-level API ---------------------------------------------------------

TEST(MtraceFile, MapAndCopyModesAgree) {
  GenOptions g;
  g.num_procs = 4;
  g.events_per_proc = 10;
  g.seed = 17;
  const Computation c = generate_random(g);
  const std::string path = ::testing::TempDir() + "/hbct_roundtrip.mtrace";
  std::string err;
  ASSERT_TRUE(write_mtrace_file(path, c, &err)) << err;

  MtraceLoadResult mapped = load_mtrace(path, MtraceMode::kMap);
  ASSERT_TRUE(mapped.ok) << mapped.error;
  MtraceLoadResult copied = load_mtrace(path, MtraceMode::kCopy);
  ASSERT_TRUE(copied.ok) << copied.error;
  EXPECT_EQ(trace_to_string(mapped.computation), trace_to_string(c));
  EXPECT_EQ(trace_to_string(copied.computation), trace_to_string(c));
  std::remove(path.c_str());
}

TEST(MtraceFile, MissingFileReportsIoError) {
  const MtraceLoadResult r =
      load_mtrace("/nonexistent/hbct_nope.mtrace", MtraceMode::kMap);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, MtraceError::kIo);
  EXPECT_FALSE(r.error.empty());
}

}  // namespace
}  // namespace hbct
