// Differential budget-soundness suite (see detect/budget.h for the
// contract): on seeded random computations, every operator is detected
// through the dispatcher under a ladder of work budgets and compared with
// the unbudgeted explicit-lattice oracle.
//
//   * definite verdicts (kHolds/kFails) under ANY budget must equal the
//     oracle — a budget may cost completeness, never soundness;
//   * kUnknown must carry a BoundReason, and definite verdicts must not;
//   * verdicts are monotone in the budget: once a detection is definite at
//     some rung, every larger rung is definite with the same verdict.
#include <gtest/gtest.h>

#include <optional>

#include "detect/brute_force.h"
#include "detect/dispatch.h"
#include "poset/generate.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/relational.h"
#include "util/rng.h"

namespace hbct {
namespace {

Computation random_comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.p_recv = 0.35;
  opt.value_lo = 0;
  opt.value_hi = 5;
  opt.seed = seed;
  return generate_random(opt);
}

LocalPredicatePtr random_local(Rng& rng, std::int32_t procs) {
  const ProcId p = static_cast<ProcId>(rng.next_below(procs));
  const char* var = rng.next_bool() ? "v0" : "v1";
  const Cmp op = static_cast<Cmp>(rng.next_below(6));
  const std::int64_t k = rng.next_in(0, 5);
  return var_cmp(p, var, op, k);
}

ConjunctivePredicatePtr random_conjunctive(Rng& rng, std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  const std::size_t m = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i) ls.push_back(random_local(rng, procs));
  return make_conjunctive(std::move(ls));
}

DisjunctivePredicatePtr random_disjunctive(Rng& rng, std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  const std::size_t m = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i) ls.push_back(random_local(rng, procs));
  return make_disjunctive(std::move(ls));
}

/// Opaque predicate in no detectable class and with no and/or structure:
/// forces the dispatcher onto the DFS fallbacks, the detectors most
/// sensitive to budgets.
PredicatePtr opaque_parity(std::uint64_t salt) {
  return make_asserted(
      [salt](const Computation&, const Cut& g) {
        return (static_cast<std::uint64_t>(g.total()) + salt) % 2 == 0;
      },
      0, "opaque-parity");
}

/// Work-budget ladder; nullopt = unlimited. The unlimited rung guarantees
/// the ladder always ends definite, so monotonicity is exercised on every
/// case, not only the cheap ones.
const std::optional<std::uint64_t> kLadder[] = {std::uint64_t{1},
                                                std::uint64_t{10},
                                                std::uint64_t{100},
                                                std::nullopt};

struct Case {
  Op op;
  PredicatePtr p;
  PredicatePtr q;  // null for the unary operators
};

void check_case(const Computation& c, const LatticeChecker& oracle,
                const Case& cs, const std::string& what) {
  const DetectResult truth =
      oracle.detect(cs.op, *cs.p, cs.q ? cs.q.get() : nullptr);
  ASSERT_TRUE(truth.definite()) << what;

  std::optional<Verdict> settled;  // verdict at the first definite rung
  for (const auto& rung : kLadder) {
    DispatchOptions opt;
    if (rung) opt.budget.max_work = *rung;
    const DetectResult r = detect(c, cs.op, cs.p, cs.q, opt);
    const std::string at =
        what + " budget=" + (rung ? std::to_string(*rung) : "inf");

    if (r.verdict == Verdict::kUnknown) {
      // kUnknown only ever appears with its reason attached...
      EXPECT_NE(r.bound, BoundReason::kNone) << at;
      // ...and never after a smaller budget already settled the case.
      EXPECT_FALSE(settled.has_value()) << at;
    } else {
      // Soundness: any definite verdict equals the unbudgeted oracle.
      EXPECT_EQ(r.bound, BoundReason::kNone) << at;
      EXPECT_EQ(r.verdict, truth.verdict) << at;
      if (settled) {
        EXPECT_EQ(r.verdict, *settled) << at;
      }
      settled = r.verdict;
    }
  }
  // The unlimited rung has no step bounds, so the ladder must end definite.
  EXPECT_TRUE(settled.has_value()) << what;
}

class BudgetSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetSoundness, DefiniteVerdictsMatchOracleAtEveryBudget) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  Computation c = random_comp(seed);
  LatticeChecker oracle(c);

  const std::int32_t n = c.num_procs();
  std::vector<Case> cases;
  for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
    cases.push_back({op, random_conjunctive(rng, n), nullptr});
    cases.push_back({op, random_disjunctive(rng, n), nullptr});
    cases.push_back({op, opaque_parity(seed), nullptr});  // DFS fallback
  }
  // EU: the A3 route (p conjunctive, q linear) and the DFS route.
  cases.push_back(
      {Op::kEU, random_conjunctive(rng, n), random_conjunctive(rng, n)});
  cases.push_back({Op::kEU, opaque_parity(seed), opaque_parity(seed + 1)});
  // AU: the disjunctive polynomial route and the DFS route.
  cases.push_back(
      {Op::kAU, random_disjunctive(rng, n), random_disjunctive(rng, n)});
  cases.push_back({Op::kAU, opaque_parity(seed), opaque_parity(seed + 1)});

  for (std::size_t i = 0; i < cases.size(); ++i)
    check_case(c, oracle, cases[i],
               std::string(to_string(cases[i].op)) + "#" + std::to_string(i) +
                   " seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetSoundness,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(BudgetSoundness, RefusedExponentialIsUnknownNotAnAssert) {
  Computation c = random_comp(3);
  // Odd salts: false at the initial cut, so the holds-initially
  // observer-independence shortcut does not apply and every operator is
  // genuinely routed at the DFS fallback.
  PredicatePtr p = opaque_parity(1);
  PredicatePtr q = opaque_parity(3);
  DispatchOptions opt;
  opt.allow_exponential = false;
  for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
    DetectResult r = detect(c, op, p, nullptr, opt);
    EXPECT_EQ(r.verdict, Verdict::kUnknown) << to_string(op);
    EXPECT_EQ(r.bound, BoundReason::kStateCap) << to_string(op);
  }
  for (Op op : {Op::kEU, Op::kAU}) {
    DetectResult r = detect(c, op, p, q, opt);
    EXPECT_EQ(r.verdict, Verdict::kUnknown) << to_string(op);
    EXPECT_EQ(r.bound, BoundReason::kStateCap) << to_string(op);
  }
  // Predicates with a polynomial route are unaffected by the refusal.
  Rng rng(7);
  auto conj = random_conjunctive(rng, c.num_procs());
  DetectResult ok = detect(c, Op::kEF, conj, nullptr, opt);
  EXPECT_TRUE(ok.definite());
}

TEST(BudgetSoundness, StateCapOnDfsIsUnknownWithReason) {
  Computation c = generate_independent(4, 4);  // 625 cuts, all reachable
  PredicatePtr never = make_false();
  DispatchOptions opt;
  opt.budget.max_states = 8;
  DetectResult r = detect(c, Op::kEG, never, nullptr, opt);
  // EG(false) fails at the initial cut — definite even under the cap...
  EXPECT_EQ(r.verdict, Verdict::kFails);
  // ...while EF of a never-true opaque predicate must exhaust the space
  // and instead reports the cap.
  PredicatePtr unreachable = make_asserted(
      [](const Computation&, const Cut&) { return false; }, 0, "never");
  DetectResult cap = detect(c, Op::kEF, unreachable, nullptr, opt);
  EXPECT_EQ(cap.verdict, Verdict::kUnknown);
  EXPECT_EQ(cap.bound, BoundReason::kStateCap);
}

}  // namespace
}  // namespace hbct
