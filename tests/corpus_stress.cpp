// Corpus stress tier (ctest label: corpus-stress, gated behind
// -DHBCT_STRESS_TESTS=ON; the binary itself always builds).
//
// Production-scale end-to-end flow: build a scenario owning (>= 128 procs,
// the alltoall case >= 1M events), serialize it to hbct-mtrace, drop the
// owning computation, mmap the file back in zero-copy view mode, and run
// the stress-safe battery cells against their construction-proved
// verdicts. Any deviation is recorded in corpus_verdict_diff.txt in the
// working directory (CI uploads it as an artifact) and fails the run.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/golden.h"
#include "corpus/scenario.h"
#include "poset/mtrace.h"

namespace {

using namespace hbct;
using namespace hbct::corpus;

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kFails: return "fails";
    default: return "unknown";
  }
}

std::vector<std::string> g_diff;

void record(const std::string& line) {
  g_diff.push_back(line);
  std::fprintf(stderr, "[corpus_stress] MISMATCH %s\n", line.c_str());
}

/// Returns false on any failure (recorded in g_diff).
bool run_case(const char* scenario, const CorpusOptions& copt,
              std::int64_t min_events, std::size_t parallelism) {
  std::vector<BatteryCell> battery;
  std::int64_t total = 0;
  const std::string path =
      std::string("corpus_stress_") + scenario + ".mtrace";
  {
    Scenario s = build_scenario(scenario, copt);
    total = s.computation.total_events();
    battery = std::move(s.battery);
    std::string err;
    if (!write_mtrace_file(path, s.computation, &err)) {
      record(std::string(scenario) + ": write_mtrace_file failed: " + err);
      return false;
    }
  }  // the owning computation dies here; only the file remains
  if (total < min_events) {
    record(std::string(scenario) + ": built only " + std::to_string(total) +
           " events, wanted >= " + std::to_string(min_events));
    return false;
  }
  std::printf("[corpus_stress] %s: procs=%d events=%lld file=%s\n", scenario,
              copt.procs, static_cast<long long>(total), path.c_str());

  MtraceLoadResult view = load_mtrace(path, MtraceMode::kMap);
  if (!view.ok) {
    record(std::string(scenario) + ": load_mtrace failed: " + view.error);
    return false;
  }

  DispatchOptions opt;
  opt.parallelism = parallelism;
  const std::vector<CellOutcome> outcomes =
      run_battery(view.computation, battery, opt, /*stress_only=*/true);
  bool ok = true;
  for (const CellOutcome& o : outcomes) {
    if (o.got == o.expect && o.witness_ok) {
      std::printf("[corpus_stress]   %-28s %-6s via %s\n", o.name.c_str(),
                  verdict_name(o.got), o.algorithm.c_str());
      continue;
    }
    ok = false;
    record(std::string(scenario) + "/" + o.name + ": expect " +
           verdict_name(o.expect) + " got " + verdict_name(o.got) +
           (o.witness_ok ? "" : " (witness invalid)") + " via " +
           o.algorithm);
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return ok;
}

}  // namespace

int main() {
  bool ok = true;
  // The headline config: >= 1M events over 128 procs, zero-copy view.
  ok &= run_case("mpi_alltoall", {128, 3907, 2002}, 1'000'000, 1);
  // Asymmetric event counts (root-heavy) at the same width.
  ok &= run_case("mpi_barrier", {128, 200, 2002}, 100'000, 1);
  // Relational/channel-heavy battery; parallelism 2 exercises the
  // fan-out pool under the sanitizer jobs.
  ok &= run_case("replication", {128, 300, 2002}, 150'000, 2);

  if (!g_diff.empty()) {
    std::ofstream out("corpus_verdict_diff.txt", std::ios::trunc);
    for (const std::string& line : g_diff) out << line << "\n";
    std::fprintf(stderr,
                 "[corpus_stress] wrote corpus_verdict_diff.txt (%zu "
                 "mismatches)\n",
                 g_diff.size());
  }
  std::printf("[corpus_stress] %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
