// End-to-end smoke test: simulate, detect, cross-check against the lattice.
#include <gtest/gtest.h>

#include "hbct.h"

namespace hbct {
namespace {

TEST(Smoke, TokenMutexViolationDetected) {
  sim::Simulator good = sim::make_token_mutex(3, 2, /*inject_violation=*/false);
  Computation cg = std::move(good).run({});
  cg.validate();

  auto both_in_cs =
      make_and(PredicatePtr(var_cmp(0, "cs", Cmp::kEq, 1)),
               PredicatePtr(var_cmp(2, "cs", Cmp::kEq, 1)));
  EXPECT_FALSE(detect(cg, Op::kEF, both_in_cs).holds());

  sim::Simulator bad = sim::make_token_mutex(3, 2, /*inject_violation=*/true);
  Computation cb = std::move(bad).run({});
  cb.validate();
  EXPECT_TRUE(detect(cb, Op::kEF, both_in_cs).holds());
}

TEST(Smoke, CtlQueryRoundTrip) {
  sim::Simulator s = sim::make_producer_consumer(5, 2);
  Computation c = std::move(s).run({});
  c.validate();

  auto r = ctl::evaluate_query(c, "AG(produced@P0 - consumed@P1 <= 2)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.result.holds()) << r.result.algorithm;

  auto r2 = ctl::evaluate_query(c, "EF(consumed@P1 >= 5)");
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(r2.result.holds());
}

TEST(Smoke, BruteForceAgreesOnSmallRandom) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = 42;
  Computation c = generate_random(opt);
  c.validate();

  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 5),
                             var_cmp(1, "v0", Cmp::kLe, 7)});
  LatticeChecker chk(c);
  for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
    DetectResult fast = detect(c, op, p);
    DetectResult slow = chk.detect(op, *p);
    EXPECT_EQ(fast.holds(), slow.holds())
        << to_string(op) << " via " << fast.algorithm;
  }
}

}  // namespace
}  // namespace hbct
