// Tests for computation slicing (regular predicates).
#include <gtest/gtest.h>

#include <set>

#include "detect/brute_force.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/local.h"
#include "slice/slicer.h"
#include "util/rng.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.p_send = 0.35;
  opt.seed = seed;
  return generate_random(opt);
}

class SliceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SliceProperty, MembershipMatchesDirectEvaluation) {
  Computation c = comp(GetParam());
  Rng rng(GetParam() * 97);
  LatticeChecker chk(c);

  std::vector<PredicatePtr> regs = {
      make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 4),
                        var_cmp(1, "v1", Cmp::kGe, 1)}),
      all_channels_empty(),
      channel_bound_le(0, 1, 0),
      make_conjunctive(
          {var_cmp(static_cast<ProcId>(rng.next_below(3)), "v0", Cmp::kEq,
                   rng.next_in(0, 5))}),
  };
  for (const auto& p : regs) {
    Slice s = Slice::compute(c, p);
    const auto labels = chk.label(*p);
    for (NodeId v = 0; v < chk.lattice().size(); ++v) {
      EXPECT_EQ(s.satisfies(chk.lattice().cut(v)), labels[v] != 0)
          << p->describe() << " at " << chk.lattice().cut(v).to_string();
    }
  }
}

TEST_P(SliceProperty, LeastAndGreatestBracketSatisfyingSet) {
  Computation c = comp(GetParam() + 40);
  LatticeChecker chk(c);
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 4),
                             var_cmp(2, "v1", Cmp::kLe, 4)});
  Slice s = Slice::compute(c, p);
  const auto labels = chk.label(*p);
  bool any = false;
  for (NodeId v = 0; v < chk.lattice().size(); ++v) {
    if (!labels[v]) continue;
    any = true;
    ASSERT_FALSE(s.empty());
    EXPECT_TRUE(s.least()->subset_of(chk.lattice().cut(v)));
    EXPECT_TRUE(chk.lattice().cut(v).subset_of(*s.greatest()));
  }
  EXPECT_EQ(any, !s.empty());
  if (!s.empty()) {
    EXPECT_TRUE(p->eval(c, *s.least()));
    EXPECT_TRUE(p->eval(c, *s.greatest()));
  }
}

TEST_P(SliceProperty, ElementsAreSatisfyingAndJoinDense) {
  Computation c = comp(GetParam() + 80);
  LatticeChecker chk(c);
  auto p = make_conjunctive({var_cmp(1, "v0", Cmp::kGe, 1)});
  Slice s = Slice::compute(c, p);
  if (s.empty()) return;
  // Every slice element satisfies p; every satisfying cut is a join of
  // slice elements below it.
  for (const Cut& e : s.elements()) EXPECT_TRUE(p->eval(c, e));
  const auto labels = chk.label(*p);
  for (NodeId v = 0; v < chk.lattice().size(); ++v) {
    if (!labels[v]) continue;
    const Cut& g = chk.lattice().cut(v);
    if (g.total() == 0) continue;
    Cut acc(g.size());
    for (const Cut& e : s.elements())
      if (e.subset_of(g)) acc = Cut::join(acc, e);
    EXPECT_EQ(acc, g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

class SliceEnumeration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SliceEnumeration, MatchesBruteForceSatisfyingSet) {
  Computation c = comp(GetParam() + 200);
  LatticeChecker chk(c);
  std::vector<PredicatePtr> regs = {
      all_channels_empty(),
      make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 4),
                        var_cmp(2, "v1", Cmp::kGe, 1)}),
      channel_bound_le(0, 1, 1),
  };
  for (const auto& p : regs) {
    Slice s = Slice::compute(c, p);
    auto cuts = s.enumerate_satisfying();
    ASSERT_TRUE(cuts.has_value());
    // The enumeration equals the brute-force satisfying set exactly.
    std::set<std::vector<std::int32_t>> got, expect;
    for (const Cut& g : *cuts) got.insert(g.raw());
    const auto labels = chk.label(*p);
    for (NodeId v = 0; v < chk.lattice().size(); ++v)
      if (labels[v]) expect.insert(chk.lattice().cut(v).raw());
    EXPECT_EQ(got, expect) << p->describe();
    // Ascending-cardinality order, no duplicates.
    EXPECT_EQ(got.size(), cuts->size());
    for (std::size_t i = 1; i < cuts->size(); ++i)
      EXPECT_LE((*cuts)[i - 1].total(), (*cuts)[i].total());
  }
}

TEST_P(SliceEnumeration, CapReturnsNullopt) {
  Computation c = comp(GetParam() + 300);
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, -10)});  // all cuts
  Slice s = Slice::compute(c, p);
  EXPECT_FALSE(s.enumerate_satisfying(3).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceEnumeration,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Slice, EmptySliceWhenUnsatisfiable) {
  Computation c = comp(1);
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kGt, 100)});
  Slice s = Slice::compute(c, p);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.satisfies(c.initial_cut()));
  EXPECT_FALSE(s.satisfies(c.final_cut()));
  EXPECT_TRUE(s.elements().empty());
}

TEST(Slice, InitialCutMembership) {
  Computation c = comp(2);
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, -100)});  // always
  Slice s = Slice::compute(c, p);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(*s.least(), c.initial_cut());
  EXPECT_TRUE(s.satisfies(c.initial_cut()));
  EXPECT_EQ(*s.greatest(), c.final_cut());
}

TEST(Slice, StatsAreAccounted) {
  Computation c = comp(3);
  auto p = all_channels_empty();
  Slice s = Slice::compute(c, p);
  EXPECT_GT(s.stats().predicate_evals, 0u);
}

}  // namespace
}  // namespace hbct
