// Tests for the hardness machinery: CNF/DNF evaluation, DPLL, and the
// Theorem 5 / Theorem 6 reduction gadgets.
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "detect/stable_oi.h"
#include "reduction/cnf.h"
#include "reduction/dpll.h"
#include "reduction/npc_reduction.h"
#include "util/rng.h"

namespace hbct {
namespace {

/// Exhaustive SAT for cross-checking DPLL on small formulas.
bool brute_sat(const Cnf& f) {
  const std::int32_t m = f.num_vars;
  for (std::uint32_t bits = 0; bits < (1u << m); ++bits) {
    std::vector<bool> a(static_cast<std::size_t>(m));
    for (std::int32_t v = 0; v < m; ++v) a[v] = (bits >> v) & 1;
    if (f.eval(a)) return true;
  }
  return false;
}

bool brute_taut(const Dnf& f) {
  const std::int32_t m = f.num_vars;
  for (std::uint32_t bits = 0; bits < (1u << m); ++bits) {
    std::vector<bool> a(static_cast<std::size_t>(m));
    for (std::int32_t v = 0; v < m; ++v) a[v] = (bits >> v) & 1;
    if (!f.eval(a)) return false;
  }
  return true;
}

TEST(Cnf, EvalAndPrint) {
  // (x0 | !x1) & (x1)
  Cnf f;
  f.num_vars = 2;
  f.clauses = {{{{0, false}, {1, true}}}, {{{1, false}}}};
  EXPECT_TRUE(f.eval({true, true}));
  EXPECT_FALSE(f.eval({false, true}));
  EXPECT_FALSE(f.eval({true, false}));  // second clause fails
  EXPECT_EQ(f.to_string(), "(x0 | !x1) & (x1)");
}

TEST(Dnf, EvalNegationAndPrint) {
  // (x0 & !x1) | (x1)
  Dnf f;
  f.num_vars = 2;
  f.terms = {{{{0, false}, {1, true}}}, {{{1, false}}}};
  EXPECT_TRUE(f.eval({true, false}));
  EXPECT_TRUE(f.eval({false, true}));
  EXPECT_FALSE(f.eval({false, false}));
  EXPECT_EQ(f.to_string(), "(x0 & !x1) | (x1)");
  // ¬f as CNF evaluates oppositely everywhere.
  Cnf n = f.negation_cnf();
  for (bool a : {false, true})
    for (bool b : {false, true})
      EXPECT_NE(f.eval({a, b}), n.eval({a, b}));
}

class DpllProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpllProperty, MatchesExhaustiveSearch) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const std::int32_t m = 2 + static_cast<std::int32_t>(rng.next_below(6));
    const std::int32_t clauses =
        1 + static_cast<std::int32_t>(rng.next_below(12));
    const std::int32_t k =
        1 + static_cast<std::int32_t>(rng.next_below(std::min(m, 3)));
    Cnf f = Cnf::random(m, clauses, k, rng);
    auto model = dpll_solve(f);
    EXPECT_EQ(model.has_value(), brute_sat(f)) << f.to_string();
    if (model) EXPECT_TRUE(f.eval(*model)) << f.to_string();
  }
}

TEST_P(DpllProperty, DnfTautologyMatchesExhaustive) {
  Rng rng(GetParam() + 500);
  for (int round = 0; round < 30; ++round) {
    const std::int32_t m = 2 + static_cast<std::int32_t>(rng.next_below(4));
    const std::int32_t terms =
        1 + static_cast<std::int32_t>(rng.next_below(14));
    Dnf f = Dnf::random(m, terms, 1 + static_cast<std::int32_t>(rng.next_below(2)), rng);
    EXPECT_EQ(dnf_tautology(f), brute_taut(f)) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpllProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Dpll, EmptyClauseUnsat) {
  Cnf f;
  f.num_vars = 1;
  f.clauses = {{}};
  EXPECT_FALSE(dpll_solve(f).has_value());
}

TEST(Dpll, NoClausesIsSat) {
  Cnf f;
  f.num_vars = 3;
  EXPECT_TRUE(dpll_solve(f).has_value());
}

// ---- The Fig. 3 gadgets -------------------------------------------------------

class NpcReduction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NpcReduction, EgDetectionEquivalentToSat) {
  Rng rng(GetParam() * 3 + 1);
  for (int round = 0; round < 10; ++round) {
    const std::int32_t m = 2 + static_cast<std::int32_t>(rng.next_below(5));
    Cnf f = Cnf::random(m, 2 + static_cast<std::int32_t>(rng.next_below(8)),
                        std::min<std::int32_t>(m, 2), rng);
    Reduction r = reduce_sat_to_eg(f);
    r.computation.validate();
    EXPECT_EQ(r.computation.num_procs(), m + 1);
    EXPECT_EQ(r.computation.total_events(), m + 2);

    const bool eg = detect_eg_dfs(r.computation, *r.predicate).holds();
    EXPECT_EQ(eg, dpll_solve(f).has_value()) << f.to_string();
  }
}

TEST_P(NpcReduction, AgDetectionEquivalentToTautology) {
  Rng rng(GetParam() * 5 + 2);
  for (int round = 0; round < 10; ++round) {
    const std::int32_t m = 2 + static_cast<std::int32_t>(rng.next_below(4));
    Dnf f = Dnf::random(m, 1 + static_cast<std::int32_t>(rng.next_below(12)),
                        1 + static_cast<std::int32_t>(rng.next_below(2)), rng);
    Reduction r = reduce_tautology_to_ag(f);
    r.computation.validate();
    const bool ag = detect_ag_dfs(r.computation, *r.predicate).holds();
    EXPECT_EQ(ag, dnf_tautology(f)) << f.to_string();
  }
}

TEST_P(NpcReduction, GadgetPredicateIsObserverIndependent) {
  Rng rng(GetParam() * 7 + 3);
  const std::int32_t m = 3;
  Cnf f = Cnf::random(m, 4, 2, rng);
  Reduction r = reduce_sat_to_eg(f);
  // Holds initially (x_{m+1} = true) => observer-independent, both by the
  // class computation and by ground truth on the explicit lattice.
  EXPECT_TRUE(r.predicate->eval(r.computation, r.computation.initial_cut()));
  EXPECT_NE(effective_classes(*r.predicate, r.computation) &
                kClassObserverIndependent,
            0u);
  LatticeChecker chk(r.computation);
  EXPECT_TRUE(brute_check_classes(chk, *r.predicate).observer_independent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NpcReduction,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(NpcReduction, UnsatExplodesSearchSpaceButStaysCorrect) {
  // x0 & !x0 padded with extra vars: UNSAT; the EG search must visit the
  // whole assignment hypercube and still answer false.
  Cnf f;
  f.num_vars = 8;
  f.clauses = {{{{0, false}}}, {{{0, true}}}};
  Reduction r = reduce_sat_to_eg(f);
  DetectResult d = detect_eg_dfs(r.computation, *r.predicate);
  EXPECT_FALSE(d.holds());
  EXPECT_GT(d.stats.cut_steps, 1u << 8);  // exponential region explored
}

}  // namespace
}  // namespace hbct
