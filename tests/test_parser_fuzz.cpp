// Parser robustness: random garbage must never crash, and every
// successfully parsed query must print to a string that re-parses to the
// same print (print∘parse is a fixpoint after one iteration).
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "ctl/compile.h"
#include "ctl/parser.h"
#include "poset/generate.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace hbct {
namespace {

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  const char alphabet[] =
      "EFGA[]()<>=!&|+-@P0123456789 xyzpostruechannels_emptyU,";
  for (int round = 0; round < 400; ++round) {
    const std::size_t len = rng.next_below(60);
    std::string s;
    for (std::size_t i = 0; i < len; ++i)
      s.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
    auto r = ctl::parse_query(s);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "input: " << s;
    } else {
      // Whatever parsed must round-trip through its own printout.
      const std::string printed = ctl::to_string(r.query);
      auto r2 = ctl::parse_query(printed);
      ASSERT_TRUE(r2.ok) << "printed form failed: " << printed;
      EXPECT_EQ(ctl::to_string(r2.query), printed);
    }
  }
}

TEST_P(ParserFuzz, GrammaticallyGeneratedQueriesRoundTrip) {
  Rng rng(GetParam() + 500);

  // Random well-formed formula generator mirroring the grammar.
  std::function<std::string(int)> gen_state = [&](int depth) -> std::string {
    if (depth <= 0 || rng.next_bool(0.4)) {
      switch (rng.next_below(5)) {
        case 0:
          return strfmt("v%llu@P%llu %s %lld",
                        static_cast<unsigned long long>(rng.next_below(2)),
                        static_cast<unsigned long long>(rng.next_below(3)),
                        to_string(static_cast<Cmp>(rng.next_below(6))),
                        static_cast<long long>(rng.next_in(0, 9)));
        case 1:
          return "channels_empty";
        case 2:
          return strfmt("pos(%llu) >= %lld",
                        static_cast<unsigned long long>(rng.next_below(3)),
                        static_cast<long long>(rng.next_in(0, 5)));
        case 3:
          return strfmt("intransit(0,1) <= %lld",
                        static_cast<long long>(rng.next_in(0, 3)));
        default:
          return rng.next_bool() ? "true" : "false";
      }
    }
    switch (rng.next_below(5)) {
      case 0:
        return "(" + gen_state(depth - 1) + ") && (" + gen_state(depth - 1) +
               ")";
      case 1:
        return "(" + gen_state(depth - 1) + ") || (" + gen_state(depth - 1) +
               ")";
      case 2:
        return "!(" + gen_state(depth - 1) + ")";
      case 3: {
        const char* ops[] = {"EF", "AF", "EG", "AG"};
        return std::string(ops[rng.next_below(4)]) + "(" +
               gen_state(depth - 1) + ")";
      }
      default:
        return std::string(rng.next_bool() ? "E" : "A") + "[" +
               gen_state(depth - 1) + " U " + gen_state(depth - 1) + "]";
    }
  };

  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 3;
  opt.seed = GetParam();
  Computation c = generate_random(opt);

  for (int round = 0; round < 60; ++round) {
    const std::string text = gen_state(3);
    auto r = ctl::parse_query(text);
    ASSERT_TRUE(r.ok) << text << " -> " << r.error;
    const std::string printed = ctl::to_string(r.query);
    auto r2 = ctl::parse_query(printed);
    ASSERT_TRUE(r2.ok) << printed;
    EXPECT_EQ(ctl::to_string(r2.query), printed);
    // Evaluation must not crash either (verdict unchecked here; the
    // brute-force equivalence suites cover that).
    auto verdict = ctl::evaluate_query(c, r.query);
    EXPECT_TRUE(verdict.ok) << text << " -> " << verdict.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace hbct
