// Golden-verdict regression tier (ctest label: corpus-golden).
//
// For every corpus scenario at its pinned golden parameterization:
//   1. the detector must reproduce the construction-proved verdict of
//      every battery cell, with a witness that re-certifies,
//   2. the canonical golden document must match corpus/golden/<name>.json
//      byte for byte (HBCT_REGEN_GOLDEN=1 rewrites the files instead),
//   3. the document must be byte-identical when the computation is
//      re-ingested through every trace format: text, btrace, mtrace in
//      copy mode and mtrace in zero-copy view mode.
//
// A verdict change, a routing change (algorithm strings are pinned), a
// witness regression, or a work-counter drift all show up as a one-line
// git diff under corpus/golden/.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "corpus/golden.h"
#include "corpus/scenario.h"
#include "obs/json.h"
#include "poset/mtrace.h"
#include "poset/trace_io.h"

namespace hbct::corpus {
namespace {

CorpusOptions golden_options() {
  CorpusOptions o;
  o.procs = 4;
  o.scale = 3;
  o.seed = 2002;
  return o;
}

std::string golden_path(const std::string& scenario) {
  return std::string(HBCT_CORPUS_GOLDEN_DIR) + "/" + scenario + ".json";
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class CorpusGolden : public ::testing::TestWithParam<std::size_t> {
 protected:
  const ScenarioSpec& spec() const {
    return scenario_registry()[GetParam()];
  }
};

TEST_P(CorpusGolden, DetectorMatchesConstructionProvedVerdicts) {
  const Scenario s = spec().build(golden_options());
  const auto outcomes = run_battery(s.computation, s.battery);
  ASSERT_EQ(outcomes.size(), s.battery.size());
  for (const CellOutcome& o : outcomes) {
    EXPECT_EQ(o.got, o.expect) << spec().name << "/" << o.name << " via "
                               << o.algorithm;
    EXPECT_TRUE(o.witness_ok) << spec().name << "/" << o.name << " via "
                              << o.algorithm;
  }
}

TEST_P(CorpusGolden, DocumentMatchesCommittedGolden) {
  const Scenario s = spec().build(golden_options());
  const std::string doc = golden_document(s);

  std::string err;
  ASSERT_TRUE(json_validate(doc, &err)) << err;

  const std::string path = golden_path(s.name);
  if (std::getenv("HBCT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << doc;
    return;
  }
  bool ok = false;
  const std::string committed = read_file(path, &ok);
  ASSERT_TRUE(ok) << path
                  << " missing; run with HBCT_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(doc, committed)
      << "golden drift for " << s.name
      << "; inspect with git diff after HBCT_REGEN_GOLDEN=1";
}

TEST_P(CorpusGolden, DocumentBitIdenticalAcrossIngestionPaths) {
  Scenario s = spec().build(golden_options());
  const std::string reference = golden_document(s);

  // Text.
  {
    const TraceParseResult r =
        trace_from_string(trace_to_string(s.computation));
    ASSERT_TRUE(r.ok) << r.error;
    Scenario t{s.name, s.options, r.computation, s.battery};
    EXPECT_EQ(golden_document(t), reference) << "text ingestion drifted";
  }
  // Binary stream (btrace).
  {
    const TraceParseResult r =
        trace_from_binary_string(trace_to_binary_string(s.computation));
    ASSERT_TRUE(r.ok) << r.error;
    Scenario t{s.name, s.options, r.computation, s.battery};
    EXPECT_EQ(golden_document(t), reference) << "btrace ingestion drifted";
  }
  // mtrace, owning copy and zero-copy view of the same bytes.
  {
    const std::string bytes = mtrace_to_string(s.computation);
    MtraceLoadResult view = mtrace_from_bytes(bytes);
    ASSERT_TRUE(view.ok) << view.error;
    Scenario t{s.name, s.options, std::move(view.computation), s.battery};
    EXPECT_EQ(golden_document(t), reference) << "mtrace view drifted";

    MtraceLoadResult copy = mtrace_from_bytes(bytes);
    ASSERT_TRUE(copy.ok) << copy.error;
    Scenario u{s.name, s.options, copy.computation.materialize(),
               s.battery};
    EXPECT_EQ(golden_document(u), reference)
        << "materialized mtrace ingestion drifted";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, CorpusGolden,
    ::testing::Range<std::size_t>(0, scenario_registry().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return scenario_registry()[info.param].name;
    });

}  // namespace
}  // namespace hbct::corpus
