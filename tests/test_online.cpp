// Tests for the online module: the incremental appender must agree with
// the batch builder event-for-event, and every online watch verdict must
// match offline detection on the final computation — including the fired
// witness cuts and the earliest-prefix property.
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "detect/conjunctive_gw.h"
#include "detect/disjunctive.h"
#include "detect/ef_linear.h"
#include "detect/until.h"
#include "online/appender.h"
#include "online/monitor.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "util/rng.h"

namespace hbct {
namespace {

// ---- Appender vs batch builder -------------------------------------------------

/// Replays a finished computation through the online appender and checks
/// every table matches after *each* event.
void replay_and_check(const Computation& ref) {
  OnlineAppender app(ref.num_procs());
  for (VarId v = 0; v < ref.num_vars(); ++v) app.var(ref.var_name(v));
  for (ProcId i = 0; i < ref.num_procs(); ++i)
    for (VarId v = 0; v < ref.num_vars(); ++v)
      app.set_initial(i, v, ref.value_at(i, v, 0));

  std::vector<MsgId> msg_map(static_cast<std::size_t>(ref.num_messages()),
                             kNoMsg);
  for (const EventId& eid : ref.linearization()) {
    const Event& ev = ref.event(eid);
    switch (ev.kind) {
      case EventKind::kInternal:
        app.internal(eid.proc);
        break;
      case EventKind::kSend:
        msg_map[static_cast<std::size_t>(ev.msg)] =
            app.send(eid.proc, ev.peer);
        break;
      case EventKind::kReceive:
        app.receive(eid.proc, msg_map[static_cast<std::size_t>(ev.msg)]);
        break;
    }
    for (const Assignment& a : ev.writes)
      app.write(eid.proc, ref.var_name(a.var), a.value);

    // Incremental invariants after every event.
    const Computation& c = app.computation();
    ASSERT_EQ(c.vclock(eid), ref.vclock(eid));
    ASSERT_TRUE(c.is_consistent(c.final_cut()));
  }

  const Computation& c = app.computation();
  c.validate();
  ASSERT_EQ(c.total_events(), ref.total_events());
  for (ProcId i = 0; i < ref.num_procs(); ++i) {
    for (EventIndex k = 1; k <= ref.num_events(i); ++k) {
      EXPECT_EQ(c.vclock(i, k), ref.vclock(i, k));
      EXPECT_EQ(c.reverse_vclock(i, k), ref.reverse_vclock(i, k));
    }
    for (VarId v = 0; v < ref.num_vars(); ++v)
      for (EventIndex k = 0; k <= ref.num_events(i); ++k)
        EXPECT_EQ(c.value_at(i, v, k), ref.value_at(i, v, k));
    for (ProcId j = 0; j < ref.num_procs(); ++j)
      EXPECT_EQ(c.in_transit(i, j, c.final_cut()),
                ref.in_transit(i, j, ref.final_cut()));
  }
}

class OnlineReplay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineReplay, AppenderMatchesBatchBuilder) {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 10;
  opt.p_send = 0.35;
  opt.seed = GetParam();
  replay_and_check(generate_random(opt));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineReplay,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(OnlineAppender, MidRunVariableRegistration) {
  OnlineAppender app(2);
  app.internal(0);
  VarId x = app.var("x");
  EXPECT_EQ(app.computation().value_at(0, x, 0), 0);
  EXPECT_EQ(app.computation().value_at(0, x, 1), 0);  // backfilled
  app.internal(0);
  app.write(0, x, 5);
  EXPECT_EQ(app.computation().value_at(0, x, 2), 5);
}

TEST(OnlineAppender, ReverseClocksRecomputedAfterAppend) {
  OnlineAppender app(2);
  app.internal(0);
  const Computation& c = app.computation();
  EXPECT_EQ(c.reverse_vclock(0, 1)[0], 1);  // forces lazy computation
  app.internal(0);                          // invalidates
  EXPECT_EQ(c.reverse_vclock(0, 1)[0], 2);
  EXPECT_EQ(c.reverse_vclock(0, 2)[0], 1);
  MsgId m = app.send(0, 1);
  app.receive(1, m);
  EXPECT_EQ(c.reverse_vclock(0, 3)[1], 1);  // the receive is above the send
}

// ---- Monitor watches vs offline detection ---------------------------------------

/// Drives the monitor with a random computation's events and cross-checks
/// every watch against offline detection on the full computation.
class OnlineWatch : public ::testing::TestWithParam<std::uint64_t> {};

struct Feed {
  OnlineMonitor monitor;
  explicit Feed(const Computation& ref) : monitor(ref.num_procs()) {
    for (VarId v = 0; v < ref.num_vars(); ++v) monitor.var(ref.var_name(v));
    for (ProcId i = 0; i < ref.num_procs(); ++i)
      for (VarId v = 0; v < ref.num_vars(); ++v)
        monitor.set_initial(i, v, ref.value_at(i, v, 0));
  }
  void run(const Computation& ref) {
    std::vector<MsgId> msg_map(static_cast<std::size_t>(ref.num_messages()),
                               kNoMsg);
    for (const EventId& eid : ref.linearization()) {
      const Event& ev = ref.event(eid);
      switch (ev.kind) {
        case EventKind::kInternal:
          monitor.internal(eid.proc);
          break;
        case EventKind::kSend:
          msg_map[static_cast<std::size_t>(ev.msg)] =
              monitor.send(eid.proc, ev.peer);
          break;
        case EventKind::kReceive:
          monitor.receive(eid.proc,
                          msg_map[static_cast<std::size_t>(ev.msg)]);
          break;
      }
      for (const Assignment& a : ev.writes)
        monitor.write(eid.proc, ref.var_name(a.var), a.value);
    }
    monitor.finish();  // thaw the tails: the stream is complete
  }
};

TEST_P(OnlineWatch, ConjunctivePossiblyMatchesOffline) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 8;
  opt.seed = GetParam();
  Computation ref = generate_random(opt);
  Rng rng(GetParam() * 11 + 3);

  for (int round = 0; round < 4; ++round) {
    std::vector<LocalPredicatePtr> ls;
    const std::size_t m = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < m; ++i)
      ls.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)),
                           rng.next_bool() ? "v0" : "v1",
                           static_cast<Cmp>(rng.next_below(6)),
                           rng.next_in(0, 5)));
    auto p = make_conjunctive(std::move(ls));

    Feed feed(ref);
    WatchId w = feed.monitor.watch_possibly(p);
    feed.run(ref);

    DetectResult offline = detect_ef_conjunctive(ref, *p);
    ASSERT_EQ(feed.monitor.fired(w), offline.holds()) << p->describe();
    if (offline.holds()) {
      auto fires = feed.monitor.poll();
      ASSERT_EQ(fires.size(), 1u);
      // The online fire reports the same least satisfying cut.
      EXPECT_EQ(fires[0].cut, *offline.witness_cut) << p->describe();
      EXPECT_TRUE(p->eval(feed.monitor.computation(), fires[0].cut));
    }
  }
}

TEST_P(OnlineWatch, DisjunctivePossiblyAndInvariant) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 8;
  opt.seed = GetParam() + 100;
  Computation ref = generate_random(opt);
  Rng rng(GetParam() * 13 + 5);

  for (int round = 0; round < 4; ++round) {
    std::vector<LocalPredicatePtr> ls;
    const std::size_t m = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < m; ++i)
      ls.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)),
                           rng.next_bool() ? "v0" : "v1",
                           static_cast<Cmp>(rng.next_below(6)),
                           rng.next_in(0, 5)));
    auto p = make_disjunctive(std::move(ls));

    Feed feed(ref);
    WatchId possibly = feed.monitor.watch_possibly(p);
    WatchId invariant = feed.monitor.watch_invariant(p);
    feed.run(ref);

    EXPECT_EQ(feed.monitor.fired(possibly),
              detect_ef_disjunctive(ref, *p).holds())
        << p->describe();
    DetectResult ag = detect_ag_disjunctive(ref, *p);
    EXPECT_EQ(feed.monitor.fired(invariant), !ag.holds()) << p->describe();
    if (!ag.holds()) {
      for (const auto& f : feed.monitor.poll())
        if (f.watch == invariant) {
          EXPECT_FALSE(p->eval(feed.monitor.computation(), f.cut));
          EXPECT_EQ(f.cut, *ag.witness_cut);  // both are the least violation
        }
    }
  }
}

TEST_P(OnlineWatch, StableFiresAtEarliestPrefix) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 6;
  opt.seed = GetParam() + 200;
  Computation ref = generate_random(opt);

  const std::int64_t threshold = 9;
  auto p = make_stable(
      [threshold](const Computation&, const Cut& g) {
        return g.total() >= threshold;
      },
      "progress");

  Feed feed(ref);
  WatchId w = feed.monitor.watch_stable(p);
  feed.run(ref);
  ASSERT_TRUE(feed.monitor.fired(w));
  auto fires = feed.monitor.poll();
  ASSERT_EQ(fires.size(), 1u);
  // The freeze rule delays the fire until the frozen frontier reaches the
  // threshold, but the fired cut itself crosses it exactly, and the fire
  // cannot precede the threshold'th event.
  EXPECT_GE(fires[0].at_event, threshold);
  EXPECT_GE(fires[0].cut.total(), threshold);
  EXPECT_TRUE(p->eval(feed.monitor.computation(), fires[0].cut));
}

TEST_P(OnlineWatch, ConjunctiveFiresAtEarliestPossiblePrefix) {
  // The fire event index must be the first prefix whose offline EF holds.
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 6;
  opt.seed = GetParam() + 300;
  Computation ref = generate_random(opt);
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 3),
                             var_cmp(1, "v0", Cmp::kGe, 3)});

  Feed feed(ref);
  WatchId w = feed.monitor.watch_possibly(p);
  feed.run(ref);

  DetectResult offline = detect_ef_conjunctive(ref, *p);
  ASSERT_EQ(feed.monitor.fired(w), offline.holds());
  if (!offline.holds()) return;
  auto fires = feed.monitor.poll();
  ASSERT_EQ(fires.size(), 1u);

  // The fired cut is the least satisfying cut, and the fire can only
  // happen once the whole witness (plus the freeze lag) has streamed in.
  EXPECT_EQ(fires[0].cut, *offline.witness_cut);
  EXPECT_GE(fires[0].at_event, offline.witness_cut->total());
}

TEST_P(OnlineWatch, UntilWatchMatchesOfflineA3) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 8;
  opt.seed = GetParam() + 400;
  Computation ref = generate_random(opt);
  Rng rng(GetParam() * 17 + 9);

  for (int round = 0; round < 4; ++round) {
    auto p = make_conjunctive(
        {var_cmp(static_cast<ProcId>(rng.next_below(3)), "v0", Cmp::kLe,
                 rng.next_in(3, 9)),
         var_cmp(static_cast<ProcId>(rng.next_below(3)), "v1", Cmp::kLe,
                 rng.next_in(3, 9))});
    // Linear q with a real advancement walk: progress + channel emptiness.
    PredicatePtr q = make_and(
        PredicatePtr(progress_ge(static_cast<ProcId>(rng.next_below(3)),
                                 static_cast<EventIndex>(rng.next_in(1, 7)))),
        all_channels_empty());

    Feed feed(ref);
    WatchId w = feed.monitor.watch_until(p, q);
    feed.run(ref);

    DetectResult offline = detect_eu(ref, *p, *q);
    // The watch resolves iff I_q exists in the completed computation;
    // when q is never satisfied the watch stays pending (correct: a longer
    // run could still satisfy it).
    DetectStats st;
    auto iq = least_satisfying_cut(ref, *q, st);
    ASSERT_EQ(feed.monitor.fired(w), iq.has_value()) << q->describe();
    if (!iq) {
      EXPECT_FALSE(offline.holds());
      continue;
    }
    auto fires = feed.monitor.poll();
    ASSERT_EQ(fires.size(), 1u);
    EXPECT_EQ(fires[0].holds, offline.holds())
        << "p=" << p->describe() << " q=" << q->describe();
    EXPECT_EQ(fires[0].cut, *iq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineWatch,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(OnlineMonitor, WatchRegisteredMidRunSeesHistory) {
  OnlineMonitor m(2);
  m.var("x");
  m.internal(0);
  m.write(0, "x", 7);
  m.internal(1);
  // Register after the satisfying state already happened.
  WatchId w = m.watch_possibly(
      make_conjunctive({var_cmp(0, "x", Cmp::kEq, 7)}));
  // The tail of P0 is still mutable; the verdict lands once the stream
  // finishes (or P0 produces another event).
  m.finish();
  EXPECT_TRUE(m.fired(w));
  auto fires = m.poll();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].cut, Cut({1, 0}));
}

TEST(OnlineMonitor, TailThawsOnNextEventWithoutFinish) {
  OnlineMonitor m(2);
  m.var("x");
  m.internal(0);
  m.write(0, "x", 7);
  WatchId w = m.watch_possibly(
      make_conjunctive({var_cmp(0, "x", Cmp::kEq, 7)}));
  EXPECT_FALSE(m.fired(w));  // frozen: the write could still change
  m.internal(0);             // new event freezes the previous one
  EXPECT_TRUE(m.fired(w));
  EXPECT_EQ(m.poll()[0].cut, Cut({1, 0}));
}

TEST(OnlineMonitor, InvariantViolationByLateWrite) {
  OnlineMonitor m(2);
  m.var("ok");
  m.set_initial(0, m.var("ok"), 1);
  m.set_initial(1, m.var("ok"), 1);
  auto inv = make_disjunctive({var_cmp(0, "ok", Cmp::kEq, 1),
                               var_cmp(1, "ok", Cmp::kEq, 1)});
  WatchId w = m.watch_invariant(inv);
  m.internal(0);
  EXPECT_FALSE(m.fired(w));
  m.write(0, "ok", 0);  // still fine: P1 holds the disjunct
  EXPECT_FALSE(m.fired(w));
  m.internal(1);
  m.write(1, "ok", 0);  // now both can be 0 concurrently
  m.finish();
  EXPECT_TRUE(m.fired(w));
  auto fires = m.poll();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].cut, Cut({1, 1}));
}

TEST(OnlineMonitor, FreezeRulePreventsPrematureFiring) {
  // Without the freeze rule this would fire spuriously: the event arrives
  // with the carried value satisfying the predicate, then the write breaks
  // it again.
  OnlineMonitor m(2);
  m.var("x");
  m.set_initial(0, m.var("x"), 7);
  WatchId w = m.watch_possibly(make_conjunctive(
      {var_cmp(0, "x", Cmp::kEq, 7), progress_ge(0, 1)}));
  m.internal(0);        // carried value: x == 7 at position 1 ... for now
  m.write(0, "x", 0);   // the event actually set x = 0
  m.finish();
  EXPECT_FALSE(m.fired(w));
}

}  // namespace
}  // namespace hbct
