// Distributive-law dispatch: EF over disjunctions, AG over conjunctions,
// EU over disjunctive second operands — DNF/CNF shapes stay polynomial.
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "detect/dispatch.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/rng.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = seed;
  return generate_random(opt);
}

/// DNF over per-process comparisons: OR of conjunctive terms. Such a
/// predicate has no tracked class (Or of conjunctions), so without the
/// split it would hit the DFS fallback.
PredicatePtr random_dnf(Rng& rng, std::int32_t procs, std::size_t terms) {
  std::vector<PredicatePtr> parts;
  for (std::size_t t = 0; t < terms; ++t) {
    std::vector<LocalPredicatePtr> ls;
    const std::size_t m = 1 + rng.next_below(2);
    for (std::size_t i = 0; i < m; ++i)
      ls.push_back(var_cmp(static_cast<ProcId>(rng.next_below(procs)),
                           rng.next_bool() ? "v0" : "v1",
                           static_cast<Cmp>(rng.next_below(6)),
                           rng.next_in(0, 5)));
    parts.push_back(make_conjunctive(std::move(ls)));
  }
  return make_or(std::move(parts));
}

class DnfSplit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DnfSplit, EfOverDnfMatchesBruteWithoutSearch) {
  Computation c = comp(GetParam());
  LatticeChecker chk(c);
  Rng rng(GetParam() * 7 + 1);
  for (int round = 0; round < 5; ++round) {
    PredicatePtr p = random_dnf(rng, 3, 2 + rng.next_below(2));
    if (!p->disjuncts().empty()) {
      DetectResult r = detect(c, Op::kEF, p);
      EXPECT_EQ(r.holds(), chk.detect(Op::kEF, *p).holds()) << p->describe();
      // Either the distributive split, or — when the DNF happens to hold
      // at the initial cut — the even cheaper observer-independent scan.
      EXPECT_TRUE(r.algorithm == "ef-or-split" ||
                  r.algorithm == "oi-single-observation")
          << r.algorithm;
      if (r.holds()) EXPECT_TRUE(p->eval(c, *r.witness_cut));
    } else {
      // All terms merged into one disjunctive predicate (all locals):
      // handled by the disjunctive scan; still check the verdict.
      EXPECT_EQ(detect(c, Op::kEF, p).holds(), chk.detect(Op::kEF, *p).holds());
    }
  }
}

TEST_P(DnfSplit, AgOverCnfMatchesBrute) {
  Computation c = comp(GetParam() + 30);
  LatticeChecker chk(c);
  Rng rng(GetParam() * 11 + 3);
  for (int round = 0; round < 5; ++round) {
    // CNF: AND of disjunctive clauses — Or-of-locals under And.
    std::vector<PredicatePtr> clauses;
    const std::size_t k = 2 + rng.next_below(2);
    for (std::size_t t = 0; t < k; ++t) {
      std::vector<LocalPredicatePtr> ls;
      for (int i = 0; i < 2; ++i)
        ls.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)),
                             rng.next_bool() ? "v0" : "v1",
                             static_cast<Cmp>(rng.next_below(6)),
                             rng.next_in(0, 5)));
      clauses.push_back(make_disjunctive(std::move(ls)));
    }
    // Mix in a channel bound so the conjunction cannot collapse into one
    // conjunctive predicate.
    clauses.push_back(channel_bound_le(0, 1, 2));
    PredicatePtr p = make_and(std::move(clauses));
    DetectResult r = detect(c, Op::kAG, p);
    EXPECT_EQ(r.holds(), chk.detect(Op::kAG, *p).holds()) << p->describe();
    if (!r.holds()) {
      ASSERT_TRUE(r.witness_cut.has_value());
      EXPECT_FALSE(p->eval(c, *r.witness_cut));
    }
  }
}

TEST_P(DnfSplit, EuOverDisjunctiveQMatchesBrute) {
  Computation c = comp(GetParam() + 60);
  LatticeChecker chk(c);
  Rng rng(GetParam() * 13 + 5);
  for (int round = 0; round < 4; ++round) {
    auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 8),
                               var_cmp(1, "v1", Cmp::kLe, 8)});
    // q = channels_empty ∨ conjunctive-term: an Or of two linear parts —
    // not linear itself, but each disjunct is.
    std::vector<LocalPredicatePtr> term;
    term.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)), "v0",
                           static_cast<Cmp>(rng.next_below(6)),
                           rng.next_in(0, 5)));
    term.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)), "v1",
                           static_cast<Cmp>(rng.next_below(6)),
                           rng.next_in(0, 5)));
    PredicatePtr q = make_or(PredicatePtr(all_channels_empty()),
                             PredicatePtr(make_conjunctive(std::move(term))));
    ASSERT_FALSE(q->disjuncts().empty());
    DetectResult r = detect(c, Op::kEU, PredicatePtr(p), q);
    EXPECT_EQ(r.holds(), chk.detect(Op::kEU, *p, q.get()).holds())
        << q->describe();
    EXPECT_EQ(r.algorithm, "eu-or-split(A3)");
    if (r.holds()) {
      EXPECT_TRUE(q->eval(c, *r.witness_cut));
      for (std::size_t i = 0; i + 1 < r.witness_path.size(); ++i)
        EXPECT_TRUE(p->eval(c, r.witness_path[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfSplit,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(DnfSplit, SplitAvoidsExponentialFallback) {
  // With allow_exponential = false, the split paths must still answer.
  Computation c = comp(99);
  DispatchOptions opt;
  opt.allow_exponential = false;
  // progress_ge conjuncts are false at the initial cut, so the predicate is
  // not accidentally observer-independent (which would dispatch earlier).
  auto t1 = make_conjunctive({progress_ge(0, 1), progress_ge(1, 1)});
  auto t2 = make_conjunctive({progress_ge(2, 1), progress_ge(0, 2)});
  PredicatePtr dnf = make_or(PredicatePtr(t1), PredicatePtr(t2));
  DetectResult r = detect(c, Op::kEF, dnf, nullptr, opt);
  EXPECT_EQ(r.algorithm, "ef-or-split");
  PredicatePtr cnf = make_and(dnf->negate(), channel_bound_le(0, 1, 5));
  DetectResult r2 = detect(c, Op::kAG, cnf, nullptr, opt);
  EXPECT_EQ(r2.algorithm, "ag-and-split");
}

}  // namespace
}  // namespace hbct
