// Prefix garbage collection must be invisible: a monitor that periodically
// collects its frozen prefix produces bit-identical verdicts, fire order,
// witness cuts and descriptions to one that never collects. Plus: the
// guarded feed's typed AppendError surface, min-watch-frontier monotonicity,
// bounded residency, and the fire-once discipline under budgets.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "online/monitor.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/predicate.h"
#include "util/rng.h"

namespace hbct {
namespace {

bool same_fire(const WatchFire& a, const WatchFire& b) {
  return a.watch == b.watch && a.verdict == b.verdict && a.bound == b.bound &&
         a.holds == b.holds && a.cut == b.cut && a.at_event == b.at_event &&
         a.description == b.description;
}

void expect_same_fires(const std::vector<WatchFire>& a,
                       const std::vector<WatchFire>& b, const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_fire(a[i], b[i]))
        << where << " fire " << i << ": " << a[i].description << " vs "
        << b[i].description;
}

enum class WatchMix {
  kScanning,       // conj + disj + invariant + stable
  kWithUntil,      // kScanning plus an until watch (pins the whole prefix)
  kNonPinning,     // stable only: the frontier tracks the frozen limits, so
                   // periodic collection is guaranteed to reclaim
};

/// Registers an identical mix of watches on both monitors. The mix covers
/// every watch class, including until (which pins the whole prefix until it
/// resolves — GC must still be a no-op semantically, just less effective).
void register_watches(OnlineMonitor& m, std::uint64_t seed, WatchMix mix) {
  Rng rng(seed * 31 + 7);
  for (int k = 0; k < 2 && mix != WatchMix::kNonPinning; ++k) {
    m.watch_possibly(make_conjunctive(
        {var_cmp(static_cast<ProcId>(rng.next_below(3)), "v0",
                 static_cast<Cmp>(rng.next_below(6)), rng.next_in(0, 5)),
         var_cmp(static_cast<ProcId>(rng.next_below(3)), "v1",
                 static_cast<Cmp>(rng.next_below(6)), rng.next_in(0, 5))}));
    m.watch_possibly(make_disjunctive(
        {var_cmp(static_cast<ProcId>(rng.next_below(3)), "v0", Cmp::kGe,
                 rng.next_in(2, 6))}));
    m.watch_invariant(make_disjunctive(
        {var_cmp(0, "v0", Cmp::kLe, rng.next_in(2, 8)),
         var_cmp(1, "v1", Cmp::kLe, rng.next_in(2, 8))}));
  }
  const std::int64_t threshold = static_cast<std::int64_t>(rng.next_in(4, 12));
  m.watch_stable(make_stable(
      [threshold](const Computation&, const Cut& g) {
        return g.total() >= threshold;
      },
      "progress"));
  if (mix == WatchMix::kWithUntil) {
    m.watch_until(
        make_conjunctive({var_cmp(static_cast<ProcId>(rng.next_below(3)), "v0",
                                  Cmp::kLe, rng.next_in(4, 9))}),
        make_and(PredicatePtr(progress_ge(static_cast<ProcId>(rng.next_below(3)),
                                          static_cast<EventIndex>(
                                              rng.next_in(1, 6)))),
                 all_channels_empty()));
  }
}

/// Streams `ref` into a GC-on and a GC-off monitor in lockstep, comparing
/// the polled fires after every event and after finish().
void run_differential(const Computation& ref, std::uint64_t seed,
                      WatchMix mix, const Budget* budget,
                      std::int64_t* reclaimed_out) {
  OnlineMonitor on(ref.num_procs());
  OnlineMonitor off(ref.num_procs());
  for (OnlineMonitor* m : {&on, &off}) {
    if (budget != nullptr) m->set_budget(*budget);
    for (VarId v = 0; v < ref.num_vars(); ++v) m->var(ref.var_name(v));
    for (ProcId i = 0; i < ref.num_procs(); ++i)
      for (VarId v = 0; v < ref.num_vars(); ++v)
        m->set_initial(i, v, ref.value_at(i, v, 0));
    register_watches(*m, seed, mix);
  }

  std::vector<MsgId> map_on(static_cast<std::size_t>(ref.num_messages()),
                            kNoMsg);
  std::vector<MsgId> map_off = map_on;
  std::int64_t reclaimed = 0;
  std::int64_t step = 0;
  for (const EventId& eid : ref.linearization()) {
    const Event& ev = ref.event(eid);
    switch (ev.kind) {
      case EventKind::kInternal:
        on.internal(eid.proc);
        off.internal(eid.proc);
        break;
      case EventKind::kSend:
        map_on[static_cast<std::size_t>(ev.msg)] = on.send(eid.proc, ev.peer);
        map_off[static_cast<std::size_t>(ev.msg)] = off.send(eid.proc, ev.peer);
        break;
      case EventKind::kReceive:
        on.receive(eid.proc, map_on[static_cast<std::size_t>(ev.msg)]);
        off.receive(eid.proc, map_off[static_cast<std::size_t>(ev.msg)]);
        break;
    }
    for (const Assignment& a : ev.writes) {
      on.write(eid.proc, ref.var_name(a.var), a.value);
      off.write(eid.proc, ref.var_name(a.var), a.value);
    }
    if (++step % 7 == 0) reclaimed += on.collect_prefix();
    expect_same_fires(on.poll(), off.poll(), "mid-stream");
  }
  on.finish();
  off.finish();
  expect_same_fires(on.poll(), off.poll(), "finish");
  if (reclaimed_out != nullptr) *reclaimed_out += reclaimed;
}

class GcDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcDifferential, FiresBitIdenticalWithAndWithoutGc) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 12;
  opt.p_send = 0.3;
  opt.seed = GetParam();
  const Computation ref = generate_random(opt);
  std::int64_t scanning = 0;
  run_differential(ref, GetParam(), WatchMix::kScanning, nullptr, &scanning);
  run_differential(ref, GetParam(), WatchMix::kWithUntil, nullptr, &scanning);
  // With only non-pinning watches the frontier tracks the frozen limits, so
  // the periodic collections must actually reclaim — this keeps the
  // differential from passing vacuously with GC never engaging.
  std::int64_t reclaimed = 0;
  run_differential(ref, GetParam(), WatchMix::kNonPinning, nullptr,
                   &reclaimed);
  EXPECT_GT(reclaimed, 0) << "GC never reclaimed anything for this seed";
}

TEST_P(GcDifferential, FiresBitIdenticalUnderBudget) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 10;
  opt.p_send = 0.3;
  opt.seed = GetParam() + 1000;
  const Computation ref = generate_random(opt);
  Budget b;
  b.max_work = 40;  // small enough to trip mid-evaluation on most seeds
  run_differential(ref, GetParam(), WatchMix::kWithUntil, &b, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- Residency bounds ----------------------------------------------------------

TEST(PrefixGc, ResidencyStaysBoundedOnLongStreams) {
  // A two-process ping-pong with no undecided watches: the frontier tracks
  // the frozen limit, so periodic collection keeps residency O(1).
  OnlineMonitor m(2);
  m.var("x");
  std::int64_t max_resident = 0;
  std::int64_t reclaimed = 0;
  for (int round = 0; round < 500; ++round) {
    MsgId a = m.send(0, 1);
    m.receive(1, a);
    MsgId b = m.send(1, 0);
    m.receive(0, b);
    if (round % 8 == 7) reclaimed += m.collect_prefix();
    max_resident = std::max(max_resident, m.resident_events());
  }
  EXPECT_EQ(m.computation().total_events(), 2000);
  EXPECT_GT(reclaimed, 1900);
  EXPECT_LT(max_resident, 64);
  // Absolute indexing still works at the live tail.
  EXPECT_EQ(m.computation().num_events(0), 1000);
  EXPECT_TRUE(m.computation().is_consistent(m.current_cut()));
}

TEST(PrefixGc, NeverTrueConjWatchDoesNotPinAnyTimeline) {
  // Regression: step_conj used to stop advancing as soon as one process had
  // no candidate, leaving the later processes' scan positions at 0. The
  // frontier then pinned those timelines forever and residency grew with the
  // stream length even though every frozen position had been refuted.
  OnlineMonitor m(2);
  m.var("x");
  m.watch_possibly(make_conjunctive({var_cmp(0, "x", Cmp::kLt, 0),
                                     var_cmp(1, "x", Cmp::kLt, 0)}));
  std::int64_t max_resident = 0;
  for (int round = 0; round < 500; ++round) {
    MsgId a = m.send(0, 1);
    if (round % 32 == 0) m.write(0, "x", round);
    m.receive(1, a);
    if (round % 8 == 7) m.collect_prefix();
    max_resident = std::max(max_resident, m.resident_events());
  }
  const Cut f = m.min_watch_frontier();
  // Both timelines' scans track the frozen limit — including the process
  // the round-robin advance visits last.
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_GT(f[i], 450);
  EXPECT_LT(max_resident, 64);
}

TEST(PrefixGc, UndecidedUntilWatchPinsThePrefix) {
  OnlineMonitor m(2);
  m.var("x");
  // q is never satisfied, so the until watch stays pending and Theorem 7's
  // decision needs the whole prefix: nothing may be collected.
  m.watch_until(make_conjunctive({var_cmp(0, "x", Cmp::kLe, 100)}),
                PredicatePtr(progress_ge(1, 50)));
  for (int i = 0; i < 20; ++i) m.internal(0);
  const Cut f = m.min_watch_frontier();
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], 0);
  EXPECT_EQ(m.collect_prefix(), 0);
  EXPECT_EQ(m.resident_events(), 20);
}

TEST(PrefixGc, FrontierIsMonotoneNondecreasing) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 15;
  opt.p_send = 0.35;
  opt.seed = 9;
  const Computation ref = generate_random(opt);

  OnlineMonitor m(ref.num_procs());
  for (VarId v = 0; v < ref.num_vars(); ++v) m.var(ref.var_name(v));
  register_watches(m, 9, WatchMix::kScanning);

  std::vector<MsgId> map(static_cast<std::size_t>(ref.num_messages()), kNoMsg);
  Cut prev = m.min_watch_frontier();
  std::int64_t step = 0;
  for (const EventId& eid : ref.linearization()) {
    const Event& ev = ref.event(eid);
    switch (ev.kind) {
      case EventKind::kInternal:
        m.internal(eid.proc);
        break;
      case EventKind::kSend:
        map[static_cast<std::size_t>(ev.msg)] = m.send(eid.proc, ev.peer);
        break;
      case EventKind::kReceive:
        m.receive(eid.proc, map[static_cast<std::size_t>(ev.msg)]);
        break;
    }
    if (++step % 5 == 0) m.collect_prefix();
    const Cut cur = m.min_watch_frontier();
    for (ProcId i = 0; i < ref.num_procs(); ++i) {
      EXPECT_GE(cur[static_cast<std::size_t>(i)],
                prev[static_cast<std::size_t>(i)]);
      // The frontier never retreats below what was already collected.
      EXPECT_GE(cur[static_cast<std::size_t>(i)], m.computation().trimmed(i));
    }
    prev = cur;
  }
}

// ---- Typed append errors -------------------------------------------------------

TEST(AppendErrors, EveryMalformedAppendIsTypedAndHarmless) {
  OnlineAppender app(2);
  const VarId x = app.var("x");

  EXPECT_EQ(app.try_internal(-1), AppendError::kBadProc);
  EXPECT_EQ(app.try_internal(2), AppendError::kBadProc);
  EXPECT_EQ(app.try_send(0, 0), AppendError::kSelfMessage);
  EXPECT_EQ(app.try_send(0, 5), AppendError::kBadProc);
  EXPECT_EQ(app.try_receive(0, 0), AppendError::kUnknownMsg);
  EXPECT_EQ(app.try_receive(0, -3), AppendError::kUnknownMsg);
  EXPECT_EQ(app.try_write(0, x, 1), AppendError::kNoEventToWrite);
  EXPECT_EQ(app.try_write(0, x + 7, 1), AppendError::kBadVar);
  EXPECT_EQ(app.try_set_initial(0, x + 7, 1), AppendError::kBadVar);
  EXPECT_EQ(app.try_set_initial(-1, x, 1), AppendError::kBadProc);
  // None of the rejections left a trace.
  EXPECT_EQ(app.computation().total_events(), 0);

  MsgId m = kNoMsg;
  ASSERT_EQ(app.try_send(0, 1, &m), AppendError::kNone);
  EXPECT_EQ(app.try_set_initial(0, x, 1), AppendError::kInitialAfterEvent);
  EXPECT_EQ(app.try_receive(0, m), AppendError::kWrongReceiver);
  ASSERT_EQ(app.try_receive(1, m), AppendError::kNone);
  EXPECT_EQ(app.try_receive(1, m), AppendError::kMsgAlreadyReceived);
  EXPECT_EQ(app.computation().total_events(), 2);
  app.computation().validate();
}

TEST(AppendErrors, MonitorRejectsFeedsAfterFinish) {
  OnlineMonitor m(2);
  const VarId x = m.var("x");
  EXPECT_EQ(m.try_internal(0), AppendError::kNone);
  m.finish();
  EXPECT_EQ(m.try_internal(0), AppendError::kFinished);
  EXPECT_EQ(m.try_send(0, 1), AppendError::kFinished);
  EXPECT_EQ(m.try_receive(1, 0), AppendError::kFinished);
  EXPECT_EQ(m.try_write(0, x, 1), AppendError::kFinished);
  EXPECT_EQ(m.try_set_initial(0, x, 1), AppendError::kFinished);
  EXPECT_EQ(m.computation().total_events(), 1);
}

TEST(AppendErrors, MessagesAreStrings) {
  // Every enumerator has a human-readable message (the serve layer surfaces
  // them verbatim in session errors).
  for (AppendError e :
       {AppendError::kNone, AppendError::kBadProc, AppendError::kSelfMessage,
        AppendError::kUnknownMsg, AppendError::kMsgAlreadyReceived,
        AppendError::kWrongReceiver, AppendError::kBadVar,
        AppendError::kInitialAfterEvent, AppendError::kNoEventToWrite,
        AppendError::kFinished}) {
    EXPECT_STRNE(to_string(e), "?");
  }
}

// ---- Fire-once discipline ------------------------------------------------------

TEST(FireOnce, NoWatchFiresTwiceUnderTinyBudgets) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenOptions opt;
    opt.num_procs = 3;
    opt.events_per_proc = 10;
    opt.p_send = 0.3;
    opt.seed = seed;
    const Computation ref = generate_random(opt);

    OnlineMonitor m(ref.num_procs());
    Budget b;
    b.max_work = 8;  // trips nearly every evaluation round
    m.set_budget(b);
    for (VarId v = 0; v < ref.num_vars(); ++v) m.var(ref.var_name(v));
    register_watches(m, seed, WatchMix::kWithUntil);

    std::vector<MsgId> map(static_cast<std::size_t>(ref.num_messages()),
                           kNoMsg);
    std::vector<int> fires_per_watch;
    const auto drain = [&] {
      for (const WatchFire& f : m.poll()) {
        if (static_cast<std::size_t>(f.watch) >= fires_per_watch.size())
          fires_per_watch.resize(static_cast<std::size_t>(f.watch) + 1, 0);
        ++fires_per_watch[static_cast<std::size_t>(f.watch)];
      }
    };
    for (const EventId& eid : ref.linearization()) {
      const Event& ev = ref.event(eid);
      switch (ev.kind) {
        case EventKind::kInternal:
          m.internal(eid.proc);
          break;
        case EventKind::kSend:
          map[static_cast<std::size_t>(ev.msg)] = m.send(eid.proc, ev.peer);
          break;
        case EventKind::kReceive:
          m.receive(eid.proc, map[static_cast<std::size_t>(ev.msg)]);
          break;
      }
      drain();
    }
    m.finish();
    drain();
    m.finish();  // idempotent: a second finish must not re-fire anything
    drain();
    for (std::size_t w = 0; w < fires_per_watch.size(); ++w)
      EXPECT_LE(fires_per_watch[w], 1) << "watch " << w << " seed " << seed;
  }
}

}  // namespace
}  // namespace hbct
