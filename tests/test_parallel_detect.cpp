// Sequential-vs-parallel equivalence: DispatchOptions::parallelism must not
// change any observable output — verdict, chosen algorithm, witness cut,
// witness path, or operation counts. The parallel fan-outs resolve to the
// lowest-index winning branch and merge exactly the stats the sequential
// early-exit loop would have accumulated, so equality here is exact, not
// merely semantic.
#include <gtest/gtest.h>

#include <vector>

#include "detect/brute_force.h"
#include "detect/dispatch.h"
#include "detect/until.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/relational.h"
#include "util/rng.h"

namespace hbct {
namespace {

Computation random_comp(std::uint64_t seed, std::int32_t procs = 3,
                        std::int32_t events = 4) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.p_recv = 0.35;
  opt.value_lo = 0;
  opt.value_hi = 5;
  opt.seed = seed;
  return generate_random(opt);
}

LocalPredicatePtr random_local(Rng& rng, std::int32_t procs) {
  const ProcId p = static_cast<ProcId>(rng.next_below(procs));
  const char* var = rng.next_bool() ? "v0" : "v1";
  const Cmp op = static_cast<Cmp>(rng.next_below(6));
  const std::int64_t k = rng.next_in(0, 5);
  return var_cmp(p, var, op, k);
}

ConjunctivePredicatePtr random_conjunctive(Rng& rng, std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  const std::size_t m = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i) ls.push_back(random_local(rng, procs));
  return make_conjunctive(std::move(ls));
}

DisjunctivePredicatePtr random_disjunctive(Rng& rng, std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  const std::size_t m = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i) ls.push_back(random_local(rng, procs));
  return make_disjunctive(std::move(ls));
}

PredicatePtr random_linear(Rng& rng, std::int32_t procs) {
  switch (rng.next_below(4)) {
    case 0:
      return random_conjunctive(rng, procs);
    case 1:
      return channel_bound_le(static_cast<ProcId>(rng.next_below(procs)),
                              static_cast<ProcId>(rng.next_below(procs)),
                              static_cast<std::int32_t>(rng.next_below(2)));
    case 2:
      return all_channels_empty();
    default:
      return make_and(PredicatePtr(random_conjunctive(rng, procs)),
                      all_channels_empty());
  }
}

/// Or-of-conjunctives: routes through the dispatcher's ef-or-split (and the
/// eu-or-split when used as an until target).
PredicatePtr random_dnf(Rng& rng, std::int32_t procs) {
  std::vector<PredicatePtr> ds;
  const std::size_t m = 2 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i)
    ds.push_back(PredicatePtr(random_conjunctive(rng, procs)));
  return make_or(std::move(ds));
}

/// And-of-disjunctives: routes through the dispatcher's ag-and-split.
PredicatePtr random_cnf(Rng& rng, std::int32_t procs) {
  std::vector<PredicatePtr> cs;
  const std::size_t m = 2 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i)
    cs.push_back(PredicatePtr(random_disjunctive(rng, procs)));
  return make_and(std::move(cs));
}

void expect_identical(const DetectResult& seq, const DetectResult& par,
                      const std::string& what) {
  EXPECT_EQ(seq.verdict, par.verdict) << what;
  EXPECT_EQ(seq.bound, par.bound) << what;
  EXPECT_EQ(seq.algorithm, par.algorithm) << what;
  EXPECT_EQ(seq.witness_cut, par.witness_cut) << what;
  EXPECT_EQ(seq.witness_path, par.witness_path) << what;
  EXPECT_EQ(seq.stats.predicate_evals, par.stats.predicate_evals) << what;
  EXPECT_EQ(seq.stats.cut_steps, par.stats.cut_steps) << what;
  EXPECT_EQ(seq.stats.lattice_nodes, par.stats.lattice_nodes) << what;
  EXPECT_EQ(seq.stats.lattice_edges, par.stats.lattice_edges) << what;
}

/// Runs detect() at parallelism 1, 4, and 0 (= pool width) and demands
/// bit-identical results.
void check_all_widths(const Computation& c, Op op, const PredicatePtr& p,
                      const PredicatePtr& q = nullptr) {
  DispatchOptions seq_opt;
  seq_opt.parallelism = 1;
  const DetectResult seq = detect(c, op, p, q, seq_opt);
  for (std::size_t par : {std::size_t{4}, std::size_t{0}}) {
    DispatchOptions par_opt;
    par_opt.parallelism = par;
    const DetectResult r = detect(c, op, p, q, par_opt);
    expect_identical(seq, r,
                     std::string(to_string(op)) + " " + p->describe() +
                         (q ? " U " + q->describe() : std::string()) +
                         " @ par=" + std::to_string(par));
  }
}

class ParallelDetect : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDetect, OrSplitAllOperators) {
  Rng rng(GetParam() * 101 + 7);
  Computation c = random_comp(GetParam() + 900);
  for (int round = 0; round < 3; ++round) {
    PredicatePtr dnf = random_dnf(rng, c.num_procs());
    for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG})
      check_all_widths(c, op, dnf);
  }
}

TEST_P(ParallelDetect, AndSplitAllOperators) {
  Rng rng(GetParam() * 103 + 11);
  Computation c = random_comp(GetParam() + 950);
  for (int round = 0; round < 3; ++round) {
    PredicatePtr cnf = random_cnf(rng, c.num_procs());
    for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG})
      check_all_widths(c, op, cnf);
  }
}

TEST_P(ParallelDetect, UntilA3FrontierSweep) {
  Rng rng(GetParam() * 107 + 13);
  Computation c = random_comp(GetParam() + 1000);
  for (int round = 0; round < 3; ++round) {
    PredicatePtr p = PredicatePtr(random_conjunctive(rng, c.num_procs()));
    PredicatePtr q = random_linear(rng, c.num_procs());
    check_all_widths(c, Op::kEU, p, q);
  }
}

TEST_P(ParallelDetect, UntilOrSplitTarget) {
  Rng rng(GetParam() * 109 + 17);
  Computation c = random_comp(GetParam() + 1050);
  for (int round = 0; round < 2; ++round) {
    PredicatePtr p = PredicatePtr(random_conjunctive(rng, c.num_procs()));
    PredicatePtr q = random_dnf(rng, c.num_procs());
    check_all_widths(c, Op::kEU, p, q);
  }
}

TEST_P(ParallelDetect, AuTwoRefuters) {
  Rng rng(GetParam() * 113 + 19);
  Computation c = random_comp(GetParam() + 1100);
  for (int round = 0; round < 3; ++round) {
    PredicatePtr p = PredicatePtr(random_disjunctive(rng, c.num_procs()));
    PredicatePtr q = PredicatePtr(random_disjunctive(rng, c.num_procs()));
    check_all_widths(c, Op::kAU, p, q);
  }
}

TEST_P(ParallelDetect, SingleClassPredicatesUnaffected) {
  // Non-split paths must also be invariant under the knob (it is simply
  // never consulted), covering the dispatcher pass-throughs.
  Rng rng(GetParam() * 127 + 23);
  Computation c = random_comp(GetParam() + 1150);
  PredicatePtr p = PredicatePtr(random_conjunctive(rng, c.num_procs()));
  for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG})
    check_all_widths(c, op, p);
}

TEST_P(ParallelDetect, LatticeCheckerLabelAndClasses) {
  Rng rng(GetParam() * 131 + 29);
  Computation c = random_comp(GetParam() + 1200);
  LatticeChecker seq(c), par(c);
  par.set_parallelism(4);
  for (int round = 0; round < 3; ++round) {
    PredicatePtr p = rng.next_bool()
                         ? PredicatePtr(random_conjunctive(rng, c.num_procs()))
                         : PredicatePtr(random_disjunctive(rng, c.num_procs()));
    DetectStats st_seq, st_par;
    EXPECT_EQ(seq.label(*p, &st_seq), par.label(*p, &st_par)) << p->describe();
    EXPECT_EQ(st_seq.predicate_evals, st_par.predicate_evals);
    const BruteClassCheck a = brute_check_classes(seq, *p);
    const BruteClassCheck b = brute_check_classes(par, *p);
    EXPECT_EQ(a.linear, b.linear) << p->describe();
    EXPECT_EQ(a.post_linear, b.post_linear) << p->describe();
    EXPECT_EQ(a.regular, b.regular) << p->describe();
    EXPECT_EQ(a.stable, b.stable) << p->describe();
    EXPECT_EQ(a.observer_independent, b.observer_independent) << p->describe();
  }
}

TEST_P(ParallelDetect, BudgetedVerdictsAgreeAcrossWidths) {
  // Budgets must not reintroduce nondeterminism: per-branch trackers and
  // the lowest-index merge mean a bounded run is as width-invariant as a
  // definite one — including which BoundReason is reported.
  Rng rng(GetParam() * 137 + 31);
  Computation c = random_comp(GetParam() + 1250);
  PredicatePtr dnf = random_dnf(rng, c.num_procs());
  PredicatePtr cnf = random_cnf(rng, c.num_procs());
  for (std::uint64_t w : {std::uint64_t{1}, std::uint64_t{10},
                          std::uint64_t{100}}) {
    for (Op op : {Op::kEF, Op::kAG}) {
      const PredicatePtr& p = op == Op::kEF ? dnf : cnf;
      DispatchOptions seq_opt;
      seq_opt.parallelism = 1;
      seq_opt.budget.max_work = w;
      const DetectResult seq = detect(c, op, p, nullptr, seq_opt);
      for (std::size_t par : {std::size_t{2}, std::size_t{4}}) {
        DispatchOptions par_opt = seq_opt;
        par_opt.parallelism = par;
        const DetectResult r = detect(c, op, p, nullptr, par_opt);
        expect_identical(seq, r,
                         std::string(to_string(op)) + " " + p->describe() +
                             " work=" + std::to_string(w) +
                             " @ par=" + std::to_string(par));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDetect,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ParallelBudget, PreCancelledTokenAbortsBeforeAnyEvaluation) {
  // A token cancelled before the detection starts must surface at the very
  // first checkpoint: kUnknown/kCancelled with zero predicate evaluations,
  // at every parallelism width.
  Computation c = random_comp(5);
  Rng rng(5);
  PredicatePtr dnf = random_dnf(rng, c.num_procs());
  CancelToken token;
  token.cancel();
  for (std::size_t par : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    DispatchOptions opt;
    opt.parallelism = par;
    opt.budget.cancel = &token;
    const DetectResult r = detect(c, Op::kEF, dnf, nullptr, opt);
    EXPECT_EQ(r.verdict, Verdict::kUnknown) << "par=" << par;
    EXPECT_EQ(r.bound, BoundReason::kCancelled) << "par=" << par;
    EXPECT_EQ(r.stats.predicate_evals, 0u) << "par=" << par;
  }
}

TEST(ParallelBudget, PastDeadlineAbortsAtFirstCheckpoint) {
  // The deadline clock is probed on the first checkpoint regardless of the
  // probe stride, so an already-expired deadline can never produce a
  // definite verdict.
  Computation c = random_comp(6);
  Rng rng(6);
  PredicatePtr cnf = random_cnf(rng, c.num_procs());
  for (std::size_t par : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    DispatchOptions opt;
    opt.parallelism = par;
    opt.budget = Budget::with_deadline_in(std::chrono::nanoseconds{-1});
    const DetectResult r = detect(c, Op::kAG, cnf, nullptr, opt);
    EXPECT_EQ(r.verdict, Verdict::kUnknown) << "par=" << par;
    EXPECT_EQ(r.bound, BoundReason::kDeadline) << "par=" << par;
    const DetectResult eu =
        detect(c, Op::kEU, PredicatePtr(random_conjunctive(rng, c.num_procs())),
               cnf, opt);
    EXPECT_EQ(eu.verdict, Verdict::kUnknown) << "par=" << par;
    EXPECT_EQ(eu.bound, BoundReason::kDeadline) << "par=" << par;
  }
}

}  // namespace
}  // namespace hbct
