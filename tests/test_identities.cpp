// CTL identities validated on the explicit lattice — this is the sanity net
// under the brute-force oracle itself (Section 3's abbreviations).
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "poset/generate.h"
#include "predicate/local.h"
#include "util/rng.h"

namespace hbct {
namespace {

class CtlIdentities : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CtlIdentities, HoldNodewiseOnRandomLattices) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = GetParam();
  Computation c = generate_random(opt);
  LatticeChecker chk(c);
  Rng rng(GetParam() * 3 + 7);

  for (int round = 0; round < 4; ++round) {
    auto p = var_cmp(static_cast<ProcId>(rng.next_below(3)),
                     rng.next_bool() ? "v0" : "v1",
                     static_cast<Cmp>(rng.next_below(6)), rng.next_in(0, 5));
    auto q = var_cmp(static_cast<ProcId>(rng.next_below(3)),
                     rng.next_bool() ? "v0" : "v1",
                     static_cast<Cmp>(rng.next_below(6)), rng.next_in(0, 5));
    const auto lp = chk.label(*p);
    const auto lq = chk.label(*q);
    const std::vector<char> ltrue(chk.lattice().size(), 1);

    auto negate = [&](std::vector<char> v) {
      for (auto& x : v) x = !x;
      return v;
    };

    // EF(p) == E[true U p], AF(p) == A[true U p].
    EXPECT_EQ(chk.ef(lp), chk.eu(ltrue, lp));
    EXPECT_EQ(chk.af(lp), chk.au(ltrue, lp));
    // EG(p) == !AF(!p), AG(p) == !EF(!p).
    EXPECT_EQ(chk.eg(lp), negate(chk.af(negate(lp))));
    EXPECT_EQ(chk.ag(lp), negate(chk.ef(negate(lp))));
    // A[p U q] == !(EG(!q) | E[!q U (!p & !q)]).
    std::vector<char> notp = negate(lp), notq = negate(lq);
    std::vector<char> conj(chk.lattice().size());
    for (NodeId v = 0; v < chk.lattice().size(); ++v)
      conj[v] = notp[v] && notq[v];
    std::vector<char> rhs_eg = chk.eg(notq);
    std::vector<char> rhs_eu = chk.eu(notq, conj);
    std::vector<char> rhs(chk.lattice().size());
    for (NodeId v = 0; v < chk.lattice().size(); ++v)
      rhs[v] = !(rhs_eg[v] || rhs_eu[v]);
    EXPECT_EQ(chk.au(lp, lq), rhs);

    // Monotonicity of path quantifiers: AG ⊆ EG ⊆ (p at node);
    // AG ⊆ AF, EG ⊆ EF, AF ⊆ EF.
    const auto ag = chk.ag(lp), eg = chk.eg(lp), af = chk.af(lp),
               ef = chk.ef(lp);
    for (NodeId v = 0; v < chk.lattice().size(); ++v) {
      EXPECT_LE(ag[v], eg[v]);
      EXPECT_LE(eg[v], lp[v]);
      EXPECT_LE(ag[v], af[v]);
      EXPECT_LE(af[v], ef[v]);
      EXPECT_LE(eg[v], ef[v]);
      EXPECT_LE(lp[v], ef[v]);
    }
    // At the top (final cut) all four collapse to p.
    const NodeId top = chk.lattice().top();
    EXPECT_EQ(ag[top], lp[top]);
    EXPECT_EQ(eg[top], lp[top]);
    EXPECT_EQ(af[top], lp[top]);
    EXPECT_EQ(ef[top], lp[top]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtlIdentities,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace hbct
