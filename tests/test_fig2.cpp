// Reproduction of Fig. 2: a 2-process computation, its lattice, the
// meet-irreducible elements (filled circles) and the Birkhoff meets quoted
// in the text: X = ⊓{E1, E2, E3, F3} and Y = ⊓{E3, F3}.
//
// The figure's image is not part of the source text; we reconstruct the
// computation from the quoted equations. Writing Ei = M(e_i) and
// Fi = M(f_i), the element X lies below exactly {E1,E2,E3,F3}, which by
// Birkhoff's correspondence pins X = E \ {e1,e2,e3,f3} = {f1, f2}, i.e. the
// cut <0,2>; similarly Y = {e1,e2,f1,f2} = <2,2>. A 2x3-event computation
// with a single message f2 -> e3 makes both cuts consistent and reproduces
// the quoted meets exactly.
#include <gtest/gtest.h>

#include <set>

#include "lattice/irreducible.h"
#include "lattice/lattice.h"
#include "poset/builder.h"

namespace hbct {
namespace {

Computation fig2_computation() {
  ComputationBuilder b(2);
  b.internal(0);
  b.label(0, "e1");
  b.internal(0);
  b.label(0, "e2");
  b.internal(1);
  b.label(1, "f1");
  MsgId m = b.send(1, 0);
  b.label(1, "f2");
  b.receive(0, m);
  b.label(0, "e3");
  b.internal(1);
  b.label(1, "f3");
  return std::move(b).build();
}

TEST(Fig2, LatticeShape) {
  Computation c = fig2_computation();
  c.validate();
  Lattice lat = Lattice::build(c);
  // Constraint: e3 needs f2, i.e. a = 3 requires b >= 2. 16 - 2 = 14 cuts.
  EXPECT_EQ(lat.size(), 14u);
  EXPECT_EQ(c.total_events(), 6);
}

TEST(Fig2, MeetIrreduciblesAreTheSixEventComplements) {
  Computation c = fig2_computation();
  Lattice lat = Lattice::build(c);
  // One meet-irreducible per event (the filled circles).
  auto mirr = meet_irreducibles(lat);
  EXPECT_EQ(mirr.size(), 6u);
  std::set<std::vector<std::int32_t>> got;
  for (NodeId v : mirr) got.insert(lat.cut(v).raw());
  std::set<std::vector<std::int32_t>> expect = {
      {0, 3},  // E1 = M(e1) = E \ {e1,e2,e3}
      {1, 3},  // E2 = M(e2)
      {2, 3},  // E3 = M(e3)
      {2, 0},  // F1 = M(f1) = E \ {f1,f2,f3,e3}
      {2, 1},  // F2 = M(f2)
      {3, 2},  // F3 = M(f3)
  };
  EXPECT_EQ(got, expect);
}

TEST(Fig2, QuotedBirkhoffMeets) {
  Computation c = fig2_computation();
  const Cut e1m = c.meet_irreducible_of(0, 1);
  const Cut e2m = c.meet_irreducible_of(0, 2);
  const Cut e3m = c.meet_irreducible_of(0, 3);
  const Cut f3m = c.meet_irreducible_of(1, 3);

  // X = ⊓{E1, E2, E3, F3} = {f1, f2}.
  Cut x = Cut::meet(Cut::meet(e1m, e2m), Cut::meet(e3m, f3m));
  EXPECT_EQ(x, Cut({0, 2}));
  // Y = ⊓{E3, F3} = {e1, e2, f1, f2}.
  Cut y = Cut::meet(e3m, f3m);
  EXPECT_EQ(y, Cut({2, 2}));
  // Both are consistent cuts of the lattice, as the figure shows.
  EXPECT_TRUE(c.is_consistent(x));
  EXPECT_TRUE(c.is_consistent(y));

  // And X is exactly the set of meet-irreducibles above it (Corollary 4):
  EXPECT_EQ(birkhoff_meet_reconstruction(c, x), x);
  EXPECT_EQ(birkhoff_join_reconstruction(c, y), y);
}

TEST(Fig2, EveryElementIsMeetOfIrreduciblesAboveIt) {
  Computation c = fig2_computation();
  Lattice lat = Lattice::build(c);
  for (NodeId v = 0; v < lat.size(); ++v)
    EXPECT_EQ(birkhoff_meet_reconstruction(c, lat.cut(v)), lat.cut(v));
}

TEST(Fig2, IrreduciblesAreExponentiallyFewerThanLattice) {
  // The computational point of Birkhoff's theorem (Section 5): |M(L)| = |E|
  // while |L| grows exponentially. Scale Fig. 2's shape up.
  ComputationBuilder b(4);
  for (ProcId i = 0; i < 4; ++i)
    for (int k = 0; k < 4; ++k) b.internal(i);
  Computation c = std::move(b).build();
  Lattice lat = Lattice::build(c);
  EXPECT_EQ(lat.size(), 625u);  // 5^4
  EXPECT_EQ(meet_irreducible_cuts(c).size(), 16u);  // |E|
}

}  // namespace
}  // namespace hbct
