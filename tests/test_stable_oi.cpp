// Tests for stable / observer-independent detection and the generic DFS
// search detectors (Table 1's "trivial" and "arbitrary" entries).
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "detect/dispatch.h"
#include "detect/stable_oi.h"
#include "poset/generate.h"
#include "predicate/disjunctive.h"
#include "predicate/channel.h"
#include "predicate/local.h"
#include "util/rng.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = seed;
  return generate_random(opt);
}

/// "Total progress >= k" — up-closed, hence stable.
PredicatePtr total_progress_ge(std::int64_t k) {
  return make_stable(
      [k](const Computation&, const Cut& g) { return g.total() >= k; },
      "total-progress");
}

class StableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StableProperty, AllFourOperatorsMatchBrute) {
  Computation c = comp(GetParam());
  LatticeChecker chk(c);
  for (std::int64_t k : {0, 1, 5, 11, 12, 13}) {
    auto p = total_progress_ge(k);
    // Sanity: the claim "stable" is true on the lattice.
    EXPECT_TRUE(brute_check_classes(chk, *p).stable);
    for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
      DetectResult fast = detect_stable(c, *p, op);
      EXPECT_EQ(fast.holds(), chk.detect(op, *p).holds())
          << to_string(op) << " k=" << k;
      EXPECT_LE(fast.stats.predicate_evals, 1u);  // truly trivial
    }
  }
}

TEST_P(StableProperty, TerminatedViaDispatch) {
  Computation c = comp(GetParam() + 30);
  auto t = make_terminated();
  EXPECT_TRUE(detect(c, Op::kEF, t).holds());
  EXPECT_TRUE(detect(c, Op::kAF, t).holds());
  EXPECT_FALSE(detect(c, Op::kEG, t).holds());
  EXPECT_FALSE(detect(c, Op::kAG, t).holds());
  EXPECT_EQ(detect(c, Op::kEF, t).algorithm, "stable-final");
}

INSTANTIATE_TEST_SUITE_P(Seeds, StableProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

class OiProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OiProperty, SingleObservationDecidesEfAndAf) {
  Computation c = comp(GetParam() + 60);
  LatticeChecker chk(c);
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    // Disjunctive predicates are the canonical OI family.
    std::vector<LocalPredicatePtr> ls;
    for (int i = 0; i < 2; ++i)
      ls.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)),
                           rng.next_bool() ? "v0" : "v1",
                           static_cast<Cmp>(rng.next_below(6)),
                           rng.next_in(0, 5)));
    auto p = make_disjunctive(std::move(ls));
    DetectResult fast = detect_ef_observer_independent(c, *p);
    EXPECT_EQ(fast.holds(), chk.detect(Op::kEF, *p).holds()) << p->describe();
    EXPECT_EQ(fast.holds(), chk.detect(Op::kAF, *p).holds()) << p->describe();
    if (fast.holds()) EXPECT_TRUE(p->eval(c, *fast.witness_cut));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OiProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// Regression: an aborted search must come back kUnknown, never a definite
// verdict. In particular ag-dfs = ¬ef-dfs(¬p) used to read an aborted inner
// search as "EF(¬p) is false" and answer AG(p) = true — a wrong definite
// verdict. Kleene negation keeps kUnknown unknown.
TEST(BudgetBounds, AbortIsReportedNotMisanswered) {
  Computation c = generate_independent(4, 4);  // 625 cuts
  Budget tight;
  tight.max_states = 10;
  // A predicate that is true only at the final cut, so the search must
  // exhaust the space — and hits the cap instead.
  auto p = make_asserted(
      [](const Computation& cc, const Cut& g) { return g == cc.final_cut(); },
      0, "only-final");
  DetectResult r = detect_ef_dfs(c, *p, tight);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.bound, BoundReason::kStateCap);
  EXPECT_FALSE(r.definite());

  // The deterministic heart of the regression: ag-dfs over the aborted
  // inner EF(¬(¬p)) search reports kUnknown with the same bound — not true.
  DetectResult ag = detect_ag_dfs(c, *make_not(p), tight);
  EXPECT_EQ(ag.verdict, Verdict::kUnknown);
  EXPECT_EQ(ag.bound, BoundReason::kStateCap);

  // With the default (unlimited-enough) budget both are definite and agree
  // with ground truth: the final cut is reachable, so EF(p) holds and
  // AG(!p) fails.
  DetectResult full = detect_ef_dfs(c, *p);
  EXPECT_EQ(full.verdict, Verdict::kHolds);
  EXPECT_EQ(full.bound, BoundReason::kNone);
  DetectResult ag_full = detect_ag_dfs(c, *make_not(p));
  EXPECT_EQ(ag_full.verdict, Verdict::kFails);
  EXPECT_EQ(ag_full.bound, BoundReason::kNone);
}

TEST(SearchDetectors, WitnessPathsAreValid) {
  Computation c = comp(123);
  auto p = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() >= 6; }, 0,
      "probe");
  DetectResult r = detect_ef_dfs(c, *p);
  ASSERT_TRUE(r.holds());
  ASSERT_FALSE(r.witness_path.empty());
  EXPECT_EQ(r.witness_path.front(), c.initial_cut());
  EXPECT_TRUE(p->eval(c, r.witness_path.back()));
  for (std::size_t i = 0; i + 1 < r.witness_path.size(); ++i) {
    EXPECT_TRUE(r.witness_path[i].subset_of(r.witness_path[i + 1]));
    EXPECT_EQ(r.witness_path[i + 1].total(), r.witness_path[i].total() + 1);
    EXPECT_TRUE(c.is_consistent(r.witness_path[i]));
  }
}

TEST(Dispatch, PicksExpectedAlgorithms) {
  Computation c = comp(7);
  auto conj = make_and(PredicatePtr(var_cmp(0, "v0", Cmp::kLe, 3)),
                       PredicatePtr(var_cmp(1, "v0", Cmp::kLe, 3)));
  EXPECT_EQ(detect(c, Op::kEF, conj).algorithm, "gw-weak-conjunctive");
  EXPECT_EQ(detect(c, Op::kAF, conj).algorithm, "gw-strong-conjunctive");
  EXPECT_EQ(detect(c, Op::kEG, conj).algorithm, "eg-conjunctive-scan");
  EXPECT_EQ(detect(c, Op::kAG, conj).algorithm, "ag-conjunctive-scan");

  auto lin = make_and(conj, all_channels_empty());
  EXPECT_EQ(detect(c, Op::kEG, lin).algorithm, "A1-eg-linear");
  EXPECT_EQ(detect(c, Op::kAG, lin).algorithm, "A2-ag-linear");
  EXPECT_EQ(detect(c, Op::kEF, lin).algorithm, "chase-garg-ef");

  auto disj = make_or(PredicatePtr(var_cmp(0, "v0", Cmp::kLe, 3)),
                      PredicatePtr(var_cmp(1, "v0", Cmp::kLe, 3)));
  EXPECT_NE(detect(c, Op::kEG, disj).algorithm.find("eg-disjunctive"),
            std::string::npos);

  auto arb = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() % 2 == 0; }, 0,
      "parity");
  EXPECT_EQ(detect(c, Op::kEG, arb).algorithm, "eg-dfs");

  auto until_q = all_channels_empty();
  EXPECT_EQ(detect(c, Op::kEU, conj, until_q).algorithm, "A3-eu");
  EXPECT_NE(detect(c, Op::kAU, disj, disj).algorithm.find("au-disjunctive"),
            std::string::npos);
}

}  // namespace
}  // namespace hbct
