// Observability layer: span nesting (same-thread and under the parallel
// engine), histogram bucket layout, metrics determinism across parallelism
// widths, the golden Chrome trace export under an injected clock, the
// hbct.report/1 document, and the DetectStats X-macro plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "detect/dispatch.h"
#include "detect/parallel.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/predicate.h"
#include "predicate/relational.h"
#include "util/stats.h"

namespace hbct {
namespace {

Computation small_comp() {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 20;
  opt.num_vars = 2;
  opt.p_send = 0.25;
  opt.seed = 11;
  return generate_random(opt);
}

PredicatePtr wide_dnf(std::int32_t procs) {
  std::vector<PredicatePtr> ds;
  for (int d = 0; d < 6; ++d) {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < procs; ++i)
      ls.push_back(var_cmp(i, "v0", Cmp::kEq, d));
    ds.push_back(PredicatePtr(make_conjunctive(std::move(ls))));
  }
  return make_or(std::move(ds));
}

// ---- Span nesting --------------------------------------------------------------

TEST(Trace, SameThreadNestingInheritsParent) {
  Tracer t;
  EXPECT_EQ(t.current(), Span::npos);
  ScopedSpan outer(&t, "outer");
  EXPECT_EQ(t.current(), outer.id());
  {
    ScopedSpan inner(&t, "inner");
    EXPECT_EQ(t.current(), inner.id());
    const auto spans = t.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[1].parent, outer.id());
    EXPECT_EQ(spans[0].parent, Span::npos);
    EXPECT_TRUE(spans[1].open);
  }
  EXPECT_EQ(t.current(), outer.id());
  EXPECT_FALSE(t.spans()[1].open);
}

TEST(Trace, NullTracerIsNoOp) {
  ScopedSpan s(nullptr, "nothing");
  s.arg("k", 1);
  EXPECT_EQ(s.id(), Span::npos);
  EXPECT_FALSE(static_cast<bool>(s));
}

TEST(Trace, TwoTracersOnOneThreadDoNotAdoptEachOther) {
  Tracer a, b;
  ScopedSpan sa(&a, "a-root");
  ScopedSpan sb(&b, "b-root");
  EXPECT_EQ(b.spans()[0].parent, Span::npos);  // not parented on a-root
  ScopedSpan sa2(&a, "a-child");
  EXPECT_EQ(a.spans()[1].parent, sa.id());  // skips b's frame
}

TEST(Trace, ParallelEngineParentsBranchesOnTheFanout) {
  Tracer t;
  DetectStats st;
  const std::size_t kBranches = 8;
  detect_first_match(
      /*parallelism=*/4, kBranches,
      [](std::size_t) {
        DetectResult r;
        r.verdict = Verdict::kFails;
        return r;
      },
      [](const DetectResult&) { return false; }, st, &t, "test.fanout");

  const std::vector<Span> spans = t.spans();
  std::size_t fan = Span::npos;
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (spans[i].name == "test.fanout") fan = i;
  ASSERT_NE(fan, Span::npos);
  std::size_t branches = 0;
  for (const Span& s : spans) {
    EXPECT_FALSE(s.open) << s.name;  // parent closed after all children
    if (s.name != "fanout.branch") continue;
    ++branches;
    EXPECT_EQ(s.parent, fan);
    // The fan-out span's extent covers every branch, even those running on
    // pool workers: it opens before the dispatch and joins before closing.
    EXPECT_GE(s.start_ns, spans[fan].start_ns);
    EXPECT_LE(s.start_ns + s.dur_ns,
              spans[fan].start_ns + spans[fan].dur_ns);
  }
  EXPECT_EQ(branches, kBranches);
  // Deterministic fan-out counters: one fan-out, all branches merged (no
  // branch hit, so the sequential loop would have evaluated every one).
  const MetricsSnapshot m = t.metrics().snapshot();
  EXPECT_EQ(m.counters.at("parallel.fanouts"), 1u);
  EXPECT_EQ(m.counters.at("parallel.branches.merged"), kBranches);
}

// ---- Histogram layout ----------------------------------------------------------

TEST(Metrics, HistogramBucketBoundaries) {
  // Bucket 0 holds zeros; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
  for (std::size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b) - 1), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b + 1);
    EXPECT_EQ(Histogram::bucket_lo(b + 1), Histogram::bucket_hi(b));
  }
}

TEST(Metrics, HistogramRecordAndPercentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Nearest-rank into log2 buckets: monotone in q and within the bucket's
  // bound of the exact quantile.
  EXPECT_LE(s.percentile(0.5), 128u);
  EXPECT_GE(s.percentile(0.5), 50u);
  EXPECT_LE(s.percentile(0.5), s.percentile(0.9));
  EXPECT_LE(s.percentile(0.9), s.percentile(0.99));
  EXPECT_EQ(Histogram::Snapshot{}.percentile(0.5), 0u);
}

TEST(Metrics, HistogramPercentileEdgeCases) {
  // Empty histogram: every quantile is 0, never a crash or a division by
  // zero — the streaming bench reads p99 off possibly-idle histograms.
  {
    Histogram h;
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.percentile(0.0), 0u);
    EXPECT_EQ(s.percentile(0.5), 0u);
    EXPECT_EQ(s.percentile(0.99), 0u);
    EXPECT_EQ(s.percentile(1.0), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  }
  // A single sample lands every quantile in that sample's bucket.
  {
    Histogram h;
    h.record(1000);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 1u);
    const std::uint64_t hi =
        Histogram::bucket_hi(Histogram::bucket_of(1000));
    EXPECT_EQ(s.percentile(0.5), hi);
    EXPECT_EQ(s.percentile(0.99), hi);
    EXPECT_EQ(s.percentile(0.5), s.percentile(0.0));
  }
  // A single zero sample: bucket 0's exclusive upper bound is 1.
  {
    Histogram h;
    h.record(0);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.percentile(0.5), Histogram::bucket_hi(0));
    EXPECT_EQ(s.count, 1u);
  }
}

TEST(Metrics, CounterAndGauge) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("c"), &c);  // stable find-or-create
  Gauge& g = reg.gauge("g");
  g.set(5);
  g.max_of(3);
  EXPECT_EQ(g.value(), 5);
  g.max_of(9);
  EXPECT_EQ(g.value(), 9);
}

TEST(Metrics, AbsorbFollowsTheStatsXMacro) {
  MetricsRegistry reg;
  DetectStats st;
  st.predicate_evals = 7;
  st.cut_steps = 3;
  reg.absorb(st);
  reg.absorb(st);
  const MetricsSnapshot m = reg.snapshot();
  EXPECT_EQ(m.counters.at("detect.predicate_evals"), 14u);
  EXPECT_EQ(m.counters.at("detect.cut_steps"), 6u);
}

TEST(Stats, XMacroPlusEqualsAndToString) {
  DetectStats a, b;
  a.predicate_evals = 1;
  a.lattice_nodes = 2;
  b.predicate_evals = 10;
  b.cut_steps = 5;
  a += b;
  EXPECT_EQ(a.predicate_evals, 11u);
  EXPECT_EQ(a.cut_steps, 5u);
  EXPECT_EQ(a.lattice_nodes, 2u);
  const std::string s = a.to_string();
  EXPECT_NE(s.find("evals=11"), std::string::npos);
  EXPECT_NE(s.find("steps=5"), std::string::npos);
}

// ---- Determinism across widths -------------------------------------------------

/// Counters whose values are allowed to depend on scheduling (documented in
/// detect/parallel.h); everything else must be bit-identical at any width.
bool scheduling_dependent(const std::string& name) {
  return name == "parallel.branches.superseded" ||
         name == "parallel.queue_depth.max";
}

TEST(Metrics, DeterministicAcrossParallelismWidths) {
  const Computation c = small_comp();
  const PredicatePtr p = wide_dnf(c.num_procs());
  std::map<std::string, std::uint64_t> baseline;
  for (const std::size_t width : {1u, 2u, 4u}) {
    DispatchOptions opt;
    opt.parallelism = width;
    opt.trace = true;
    const DetectResult r = detect(c, Op::kEF, p, nullptr, opt);
    ASSERT_NE(r.trace, nullptr);
    std::map<std::string, std::uint64_t> counters =
        r.trace->metrics().snapshot().counters;
    for (auto it = counters.begin(); it != counters.end();)
      it = scheduling_dependent(it->first) ? counters.erase(it)
                                           : std::next(it);
    if (width == 1)
      baseline = std::move(counters);
    else
      EXPECT_EQ(counters, baseline) << "width " << width;
  }
}

// ---- Golden Chrome export ------------------------------------------------------

std::uint64_t g_fake_now = 0;
std::uint64_t fake_clock() { return g_fake_now += 100; }

TEST(Trace, GoldenChromeJsonUnderInjectedClock) {
  g_fake_now = 0;
  Tracer t(&fake_clock);  // epoch: 100
  const std::size_t a = t.begin("detect");         // 200 -> ts 100
  const std::size_t b = t.begin("walk.least-cut");  // 300 -> ts 200
  t.set_arg(b, "steps", 7);
  t.end(b);                                   // 400 -> dur 100
  t.instant("budget.trip.step-budget");       // 500 -> ts 400
  t.end(a);                                   // 600 -> dur 400
  // The thread tag is process-global (other tests may have run first);
  // splice the observed value into the golden text.
  const std::string tid = std::to_string(t.spans()[0].tid);
  const std::string expect =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"hbct\"}},"
      "{\"name\":\"detect\",\"cat\":\"hbct\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":" + tid + ",\"ts\":0.1,\"dur\":0.4,"
      "\"args\":{\"id\":0,\"parent\":-1}},"
      "{\"name\":\"walk.least-cut\",\"cat\":\"hbct\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":" + tid + ",\"ts\":0.2,\"dur\":0.1,"
      "\"args\":{\"id\":1,\"parent\":0,\"steps\":7}},"
      "{\"name\":\"budget.trip.step-budget\",\"cat\":\"hbct\",\"ph\":\"i\","
      "\"s\":\"t\",\"pid\":1,\"tid\":" + tid + ",\"ts\":0.4,\"args\":{}}"
      "],\"displayTimeUnit\":\"ns\"}";
  EXPECT_EQ(t.chrome_trace_json(), expect);
  std::string err;
  EXPECT_TRUE(json_validate(t.chrome_trace_json(), &err)) << err;
}

// ---- Reports -------------------------------------------------------------------

TEST(Report, DisabledByDefaultAndValidWhenEnabled) {
  const Computation c = small_comp();
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < c.num_procs(); ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, 8));
  const PredicatePtr p = make_conjunctive(std::move(ls));

  const DetectResult off = detect(c, Op::kEF, p);
  EXPECT_EQ(off.trace, nullptr);
  std::string err;
  const std::string off_doc = report_json(off);
  ASSERT_TRUE(json_validate(off_doc, &err)) << err;
  EXPECT_NE(off_doc.find("\"schema\":\"hbct.report/1\""), std::string::npos);
  EXPECT_NE(off_doc.find("\"spans\":null"), std::string::npos);

  DispatchOptions opt;
  opt.trace = true;
  const DetectResult on = detect(c, Op::kEF, p, nullptr, opt);
  ASSERT_NE(on.trace, nullptr);
  EXPECT_GT(on.trace->span_count(), 0u);
  const std::string on_doc = report_json(on);
  ASSERT_TRUE(json_validate(on_doc, &err)) << err;
  EXPECT_NE(on_doc.find("\"name\":\"detect\""), std::string::npos);
  EXPECT_NE(on_doc.find("\"verdict\":\"holds\""), std::string::npos);
  // Chrome export of the same run also validates.
  EXPECT_TRUE(json_validate(on.trace->chrome_trace_json(), &err)) << err;
  // Every closed span fed its per-phase latency histogram.
  const MetricsSnapshot ms = on.trace->metrics().snapshot();
  std::uint64_t span_samples = 0;
  for (const auto& [name, snap] : ms.histograms)
    if (name.rfind("span.", 0) == 0) span_samples += snap.count;
  EXPECT_EQ(span_samples, on.trace->span_count());
}

TEST(Report, BudgetTripRecordsInstantAndCounter) {
  const Computation c = small_comp();
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < c.num_procs(); ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kGe, 1000));  // never holds: full walk
  const PredicatePtr p = make_conjunctive(std::move(ls));
  DispatchOptions opt;
  opt.trace = true;
  opt.budget.max_work = 3;
  const DetectResult r = detect(c, Op::kEF, p, nullptr, opt);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  ASSERT_NE(r.trace, nullptr);
  const auto instants = r.trace->instants();
  ASSERT_FALSE(instants.empty());
  EXPECT_EQ(instants[0].name, "budget.trip.step-budget");
  EXPECT_EQ(r.trace->metrics().snapshot().counters.at(
                "budget.trips.step-budget"),
            1u);
}

// ---- JSON helpers --------------------------------------------------------------

TEST(Json, WriterEscapingAndValidation) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\n\t");
  w.key("arr").begin_array().value(std::int64_t{-3}).value(true).end_array();
  w.key("null_raw").raw("null");
  w.end_object();
  const std::string doc = w.take();
  EXPECT_EQ(doc, "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"arr\":[-3,true],"
                 "\"null_raw\":null}");
  std::string err;
  EXPECT_TRUE(json_validate(doc, &err)) << err;
  EXPECT_FALSE(json_validate("{\"a\":}", &err));
  EXPECT_FALSE(json_validate("[1,2", nullptr));
  EXPECT_FALSE(json_validate("{} extra", nullptr));
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = Summary::of(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p90, 90.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

}  // namespace
}  // namespace hbct
