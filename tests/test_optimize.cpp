// The CTL query optimizer: rewrite-rule unit cases, syntactic class
// inference (with audit-backed derivation validity), cost-model plan
// choice, and the kApply-vs-kOff differential contract — optimized
// evaluation must be bit-identical on verdicts and bound reasons whenever
// both runs are unbudgeted, and Kleene-compatible under budgets.
//
// The golden reroute test pins the headline acceptance case: a workload
// whose as-written dispatch is the exponential fallback (W001) is
// statically rerouted by optimize=kApply to a polynomial route, with the
// state-count drop recorded in tests/golden/optimize_reroute.json.
// Regenerate with HBCT_REGEN_GOLDEN=1 after an intentional change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/audit.h"
#include "analysis/infer.h"
#include "analysis/lint.h"
#include "analysis/optimize.h"
#include "analysis/rewrite.h"
#include "analysis/rules.h"
#include "ctl/compile.h"
#include "ctl/parser.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "poset/generate.h"

namespace hbct {
namespace {

using ctl::Query;

Computation comp(std::uint64_t seed, std::int32_t procs = 3,
                 std::int32_t events = 4) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events;
  opt.num_vars = 2;
  opt.seed = seed;
  return generate_random(opt);
}

Query parse(const std::string& text) {
  auto r = ctl::parse_query(text);
  EXPECT_TRUE(r.ok) << text << ": " << r.error;
  return r.query;
}

ctl::NodePtr root_of(const std::string& text) {
  const Query q = parse(text);
  return q.root ? q.root : q.p;
}

bool chain_has(const std::vector<RewriteStep>& steps, const char* rule) {
  for (const RewriteStep& s : steps)
    if (s.rule == rule) return true;
  return false;
}

bool diags_have(const std::vector<Diagnostic>& ds, DiagCode code) {
  for (const Diagnostic& d : ds)
    if (d.code == code) return true;
  return false;
}

// ---- Rewrite-rule unit cases ----------------------------------------------

TEST(Rewrite, RuleCatalogUnitCases) {
  struct Case {
    const char* before;
    const char* after;
    const char* rule;  // must appear in the recorded chain
  };
  const std::vector<Case> cases = {
      {"EF(v0@P0 >= 1 && true)", "EF(v0@P0 >= 1)", "const-fold"},
      {"EF(v0@P0 >= 1 || true)", "EF(true)", "const-fold"},
      {"EF(!(!(v0@P0 >= 1)))", "EF(v0@P0 >= 1)", "nnf-push"},
      {"EF(!(v0@P0 >= 1 && v1@P1 <= 3))", "EF(v0@P0 < 1 || v1@P1 > 3)",
       "nnf-push"},
      {"EF(v0@P0 >= 1 && v0@P0 >= 1)", "EF(v0@P0 >= 1)", "dedup-idempotent"},
      {"EF(v0@P0 >= 1 || (v0@P0 >= 1 && v1@P1 <= 3))", "EF(v0@P0 >= 1)",
       "absorb"},
      {"EF(EF(v0@P0 >= 1))", "EF(v0@P0 >= 1)", "temporal-idempotent"},
      {"!AG(v0@P0 >= 1)", "EF(v0@P0 < 1)", "not-temporal-dual"},
      {"!EF(v0@P0 >= 1)", "AG(v0@P0 < 1)", "not-temporal-dual"},
      {"!AF(v0@P0 >= 1)", "EG(v0@P0 < 1)", "not-temporal-dual"},
      {"EF(v0@P0 >= 1) || EF(v1@P1 >= 1)", "EF(v0@P0 >= 1 || v1@P1 >= 1)",
       "merge-ef-or"},
      {"AG(v0@P0 >= 1) && AG(v1@P1 >= 1)", "AG(v0@P0 >= 1 && v1@P1 >= 1)",
       "merge-ag-and"},
      {"v0@P0 >= 1 || EF(v0@P0 >= 1)", "EF(v0@P0 >= 1)", "temporal-absorb"},
      {"v0@P0 >= 1 && AG(v0@P0 >= 1)", "AG(v0@P0 >= 1)", "temporal-absorb"},
  };
  for (const Case& k : cases) {
    const ctl::Rewritten rw = ctl::rescue_temporal(root_of(k.before));
    EXPECT_TRUE(ctl::node_equal(rw.node, root_of(k.after)))
        << k.before << " rewrote to " << ctl::to_string(*rw.node) << ", want "
        << k.after;
    EXPECT_TRUE(chain_has(rw.steps, k.rule))
        << k.before << ": chain does not contain " << k.rule;
    // Every step names a catalog rule and keeps the source span.
    for (const RewriteStep& s : rw.steps) {
      EXPECT_NE(find_rule(s.rule), nullptr) << s.rule;
      EXPECT_TRUE(s.span.valid()) << s.rule << " lost its span";
      EXPECT_FALSE(s.note.empty()) << s.rule << " has no soundness note";
    }
  }
}

TEST(Rewrite, NormalizeReachesFixpoint) {
  // A second pass over an already-normalized formula must be a no-op.
  const ctl::Rewritten once =
      ctl::rescue_temporal(root_of("!AG(v0@P0 >= 1 && v0@P0 >= 1)"));
  const ctl::Rewritten twice = ctl::rescue_temporal(once.node);
  EXPECT_TRUE(twice.steps.empty())
      << "second pass applied " << twice.steps.size() << " more steps";
  EXPECT_TRUE(ctl::node_equal(once.node, twice.node));
}

TEST(Rewrite, DnfCnfRespectBudget) {
  //  (a || b) && (c || d)  -> DNF has 4 clauses.
  const auto n = ctl::normalize(root_of(
      "(v0@P0 >= 1 || v0@P1 >= 1) && (v1@P0 >= 1 || v1@P1 >= 1)"));
  const ctl::NodePtr dnf = ctl::to_dnf(n.node, 8);
  ASSERT_NE(dnf, nullptr);
  EXPECT_EQ(dnf->children.size(), 4u);
  EXPECT_EQ(ctl::to_dnf(n.node, 3), nullptr) << "budget not enforced";
  const ctl::NodePtr cnf = ctl::to_cnf(n.node, 8);
  ASSERT_NE(cnf, nullptr);
  EXPECT_EQ(cnf->children.size(), 2u);  // already conjunctive
}

// ---- Syntactic class inference --------------------------------------------

TEST(Infer, PosSumAboveIsStable) {
  const Computation c = comp(1);
  const ctl::Inference inf =
      ctl::infer_classes(c, root_of("pos(0) + pos(1) > 3"));
  EXPECT_TRUE(inf.classes & kClassStable);
  EXPECT_TRUE(inf.classes & kClassPostLinear);
  EXPECT_TRUE(inf.classes & kClassObserverIndependent);  // closure of stable
  EXPECT_TRUE(inf.co_classes & kClassLinear);
  EXPECT_FALSE(inf.down_closed());
}

TEST(Infer, PosSumBelowIsDownClosed) {
  const Computation c = comp(1);
  const ctl::Inference inf =
      ctl::infer_classes(c, root_of("pos(0) + pos(1) <= 3"));
  EXPECT_TRUE(inf.classes & kClassLinear);
  EXPECT_TRUE(inf.classes & kClassObserverIndependent);
  EXPECT_TRUE(inf.co_classes & kClassStable);
  EXPECT_TRUE(inf.down_closed());
}

/// The lint blind spot this PR closes: negation used to drop every derived
/// bit; the (classes, co_classes) pair makes it a swap.
TEST(Infer, NegationSwapsThePair) {
  const Computation c = comp(1);
  const ctl::Inference pos =
      ctl::infer_classes(c, root_of("pos(0) + pos(1) > 3"));
  const ctl::Inference neg =
      ctl::infer_classes(c, root_of("!(pos(0) + pos(1) > 3)"));
  EXPECT_EQ(neg.classes, pos.co_classes);
  EXPECT_EQ(neg.co_classes, pos.classes);
  EXPECT_TRUE(neg.down_closed());
  EXPECT_EQ(neg.derivation.rule, "not-dual");
}

TEST(Infer, LocalAtomAndConnectives) {
  const Computation c = comp(2);
  EXPECT_TRUE(ctl::infer_classes(c, root_of("v0@P0 >= 1")).classes &
              kClassLocal);
  // Conjunction of stable formulas stays stable (and-meet).
  const ctl::Inference both = ctl::infer_classes(
      c, root_of("pos(0) + pos(1) > 3 && pos(0) + pos(1) > 5"));
  EXPECT_TRUE(both.classes & kClassStable);
  EXPECT_EQ(both.derivation.rule, "and-meet");
  ASSERT_EQ(both.derivation.premises.size(), 2u);
  // Disjunction of down-closed formulas stays down-closed (or-join).
  const ctl::Inference either = ctl::infer_classes(
      c, root_of("pos(0) + pos(1) <= 3 || pos(0) + pos(1) <= 5"));
  EXPECT_TRUE(either.down_closed());
}

TEST(Infer, EquilevelOnTwoProcs) {
  const Computation c2 = comp(3, /*procs=*/2);
  EXPECT_TRUE(ctl::infer_classes(c2, root_of("pos(0) == pos(1)")).classes &
              kClassEquilevel);
  // Three processes: the diagonal argument needs n == 2.
  const Computation c3 = comp(3, /*procs=*/3);
  EXPECT_FALSE(ctl::infer_classes(c3, root_of("pos(0) == pos(1)")).classes &
               kClassEquilevel);
}

TEST(Infer, ChannelBoundIsRegular) {
  const Computation c = comp(4);
  EXPECT_TRUE(ctl::infer_classes(c, root_of("intransit(0, 1) <= 1")).classes &
              kClassRegular);
  EXPECT_TRUE(ctl::infer_classes(c, root_of("intransit(0, 1) >= 1"))
                  .co_classes &
              kClassRegular);
}

TEST(Infer, OpaqueShapesInferNothing) {
  const Computation c = comp(5);
  // Mixed monotonicity: pos(0) up, -pos(1) down — neither side closed.
  const ctl::Inference inf =
      ctl::infer_classes(c, root_of("pos(0) - pos(1) >= 0"));
  EXPECT_EQ(inf.classes, 0u);
  EXPECT_EQ(inf.co_classes, 0u);
}

TEST(Infer, DerivationTreeMirrorsTheAst) {
  const Computation c = comp(6);
  const ctl::Inference inf = ctl::infer_classes(
      c, root_of("v0@P0 >= 1 && !(pos(0) + pos(1) > 3)"));
  EXPECT_EQ(inf.derivation.premises.size(), 2u);
  const auto leaves = ctl::derivation_leaves(inf.derivation);
  ASSERT_EQ(leaves.size(), 2u);
  for (const ctl::Derivation* l : leaves) EXPECT_FALSE(l->rule.empty());
  EXPECT_FALSE(to_string(inf.derivation).empty());
}

/// The machine-checkable part of "machine-checkable derivation": for every
/// formula in the battery, on 42 random computations, the inferred bits
/// (and co-bits, via the negation) are handed to the semantic auditor and
/// must never be refuted. Zero escapes is the acceptance bar.
TEST(Infer, DerivedBitsNeverRefutedByAudit) {
  const char* battery[] = {
      "pos(0) + pos(1) > 3",
      "pos(0) + pos(1) <= 2",
      "!(pos(0) + pos(1) > 3)",
      "pos(0) + pos(1) + pos(2) >= 6",
      "pos(0) + pos(0) + pos(1) > 4",
      "v0@P0 >= 1",
      "v0@P0 + v0@P1 >= 2",
      "intransit(0, 1) <= 1",
      "intransit(0, 1) >= 1",
      "v0@P0 >= 1 && pos(0) + pos(1) > 3",
      "v0@P0 >= 1 || pos(0) + pos(1) <= 2",
      "!(v0@P0 >= 1 && pos(0) + pos(1) > 3)",
      "pos(0) + pos(1) > 3 && pos(0) + pos(1) <= 5",
      "terminated",
      "channels_empty",
      "true",
      "2 <= 3",
  };
  int inferred = 0;
  for (std::uint64_t seed = 0; seed < 42; ++seed) {
    const Computation c = comp(seed);
    for (const char* text : battery) {
      const ctl::NodePtr node = root_of(text);
      const ctl::Inference inf = ctl::infer_classes(c, node);
      if (inf.classes == 0 && inf.co_classes == 0) continue;
      ++inferred;
      const auto cp = ctl::compile_state(node);
      ASSERT_TRUE(cp.ok) << text;
      const PredicatePtr refined =
          make_refined(cp.pred, inf.classes, inf.co_classes);
      const AuditResult ar = audit_predicate(refined, c);
      std::string why;
      for (const AuditViolation& v : ar.violations) why += v.message + "; ";
      EXPECT_TRUE(ar.ok())
          << "seed " << seed << " formula '" << text << "' classes "
          << classes_to_string(inf.classes) << " refuted: " << why;
    }
  }
  // The battery must actually exercise the engine, not vacuously pass.
  EXPECT_GT(inferred, 300);
}

/// Equilevel inference audited on 2-process computations.
TEST(Infer, EquilevelBitsNeverRefutedByAudit) {
  for (std::uint64_t seed = 0; seed < 42; ++seed) {
    const Computation c = comp(seed, /*procs=*/2);
    const ctl::NodePtr node = root_of("pos(0) == pos(1)");
    const ctl::Inference inf = ctl::infer_classes(c, node);
    ASSERT_TRUE(inf.classes & kClassEquilevel) << seed;
    const auto cp = ctl::compile_state(node);
    ASSERT_TRUE(cp.ok);
    const AuditResult ar =
        audit_predicate(make_refined(cp.pred, inf.classes, inf.co_classes), c);
    EXPECT_TRUE(ar.ok()) << "seed " << seed;
  }
}

// ---- Optimizer plan choice ------------------------------------------------

TEST(Optimize, ReroutesInferableSumToStableFinal) {
  const Computation c = comp(7);
  const ctl::OptimizeOutcome oc = ctl::optimize_query(
      c, parse("EF(pos(0) + pos(1) > 3)"));
  EXPECT_TRUE(oc.changed);
  EXPECT_TRUE(chain_has(oc.steps, "infer-classes"));
  EXPECT_LT(oc.cost_after, oc.cost_before);
  EXPECT_NE(oc.plan_after.find("stable-final"), std::string::npos)
      << oc.plan_after;
  // The rewritten residual must not warn about the exponential fallback.
  EXPECT_FALSE(diags_have(oc.residual, DiagCode::kExponentialFallback));
}

TEST(Optimize, CostableCollapseToStateEval) {
  const Computation c = comp(7);
  // EF of a down-closed operand pins the verdict at the initial cut...
  const ctl::OptimizeOutcome ef =
      ctl::optimize_query(c, parse("EF(pos(0) + pos(1) <= 3)"));
  EXPECT_TRUE(ef.changed);
  EXPECT_TRUE(chain_has(ef.steps, "costable-collapse"));
  EXPECT_FALSE(ef.query.temporal);
  // ...and dually EG of a stable one.
  const ctl::OptimizeOutcome eg =
      ctl::optimize_query(c, parse("EG(pos(0) + pos(1) > 3)"));
  EXPECT_TRUE(eg.changed);
  EXPECT_TRUE(chain_has(eg.steps, "costable-collapse"));
}

TEST(Optimize, AlreadyOptimalQueriesAreUntouched) {
  const Computation c = comp(8);
  for (const char* text :
       {"EF(v0@P0 >= 1 && v1@P1 <= 3)", "AG(v0@P0 >= 0)", "AF(terminated)",
        "EF(intransit(0, 1) == 0)", "v0@P0 >= 0"}) {
    const ctl::OptimizeOutcome oc = ctl::optimize_query(c, parse(text));
    EXPECT_FALSE(oc.changed) << text << " rewrote: "
                             << (oc.steps.empty() ? "?" : oc.steps[0].rule);
    EXPECT_TRUE(oc.steps.empty());
    EXPECT_EQ(oc.cost_after, oc.cost_before);
  }
}

TEST(Optimize, RescuesNestedFormulaIntoFragment) {
  const Computation c = comp(9);
  const ctl::OptimizeOutcome oc =
      ctl::optimize_query(c, parse("!AG(v0@P0 >= 1)"));
  EXPECT_TRUE(oc.changed);
  EXPECT_TRUE(chain_has(oc.steps, "not-temporal-dual"));
  // The dual form EF(v0@P0 < 1) re-enters the fragment; on computations
  // where the operand happens to be monotone the optimizer may collapse
  // further to a bare state evaluation. Either way the nested-temporal
  // finding (W003) must be gone from the residual.
  if (oc.query.temporal) EXPECT_EQ(oc.query.op, Op::kEF);
  EXPECT_FALSE(diags_have(oc.residual, DiagCode::kNestedTemporal));
}

// ---- kApply differential: bit-identical verdicts --------------------------

const char* kQueryCorpus[] = {
    "EF(v0@P0 >= 1 && v1@P1 <= 3)",
    "AG(v0@P0 >= 0)",
    "EG(v0@P0 >= 0)",
    "AF(terminated)",
    "EF(pos(0) + pos(1) > 3)",
    "AF(pos(0) + pos(1) > 3)",
    "EG(pos(0) + pos(1) > 3)",
    "AG(pos(0) + pos(1) > 100)",
    "EF(pos(0) + pos(1) <= 3)",
    "EG(pos(0) + pos(1) <= 3)",
    "AG(pos(0) + pos(1) <= 100)",
    "EF(!(pos(0) + pos(1) > 3))",
    "EF(pos(0) + pos(1) > 3 || v0@P0 >= 1)",
    "EF(v0@P0 >= 1 && v0@P0 >= 1)",
    "EF(v0@P0 >= 1 || (v0@P0 >= 1 && v1@P1 <= 3))",
    "EF(EF(v0@P0 >= 1))",
    "!AG(v0@P0 >= 0)",
    "!EF(v0@P0 >= 4)",
    "EF(v0@P0 >= 1) || EF(v1@P1 >= 1)",
    "AG(v0@P0 >= 0) && AG(v1@P1 >= 0)",
    "E[v0@P0 >= 0 U v1@P1 >= 2]",
    "A[v0@P0 >= 0 U terminated]",
    "EF(intransit(0, 1) == 0)",
    "EF(true)",
    "v0@P0 >= 0 && channels_empty",
    "AG(EF(v0@P0 >= 1))",  // stays outside the fragment in both modes
};

TEST(OptimizeDifferential, ApplyMatchesOffOnFortySeeds) {
  DispatchOptions apply;
  apply.optimize = OptimizeMode::kApply;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Computation c = comp(seed);
    for (const char* text : kQueryCorpus) {
      const auto off = ctl::evaluate_query(c, text, {});
      const auto on = ctl::evaluate_query(c, text, apply);
      ASSERT_EQ(off.ok, on.ok) << text;
      if (!off.ok) continue;
      EXPECT_EQ(off.result.verdict, on.result.verdict)
          << "seed " << seed << " query " << text << ": off="
          << off.result.algorithm << " on=" << on.result.algorithm;
      EXPECT_EQ(off.result.bound, on.result.bound) << text;
      // Witnesses are re-certified against the *original* operand, not
      // byte-compared (a cheaper route may find a different satisfying cut).
      const Query q = parse(text);
      if (q.temporal && (q.op == Op::kEF || q.op == Op::kAF) &&
          on.result.verdict == Verdict::kHolds &&
          on.result.witness_cut.has_value()) {
        const auto cp = ctl::compile_state(q.p);
        ASSERT_TRUE(cp.ok) << text;
        EXPECT_TRUE(cp.pred->eval(c, *on.result.witness_cut))
            << "seed " << seed << " query " << text
            << ": optimized witness fails the original operand";
      }
    }
  }
}

TEST(OptimizeDifferential, BudgetLadderIsKleeneCompatible) {
  for (const std::size_t max_states : {4ul, 64ul, 4096ul}) {
    DispatchOptions off, on;
    off.budget.max_states = max_states;
    on.budget.max_states = max_states;
    on.optimize = OptimizeMode::kApply;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const Computation c = comp(seed);
      for (const char* text : kQueryCorpus) {
        const auto a = ctl::evaluate_query(c, text, off);
        const auto b = ctl::evaluate_query(c, text, on);
        if (!a.ok || !b.ok) continue;
        if (a.result.verdict == Verdict::kUnknown ||
            b.result.verdict == Verdict::kUnknown)
          continue;  // a budgeted run may give up earlier on either route
        EXPECT_EQ(a.result.verdict, b.result.verdict)
            << "seed " << seed << " budget " << max_states << " " << text;
      }
    }
  }
}

TEST(OptimizeDifferential, ParallelWidthsAgree) {
  for (const std::size_t width : {1ul, 4ul}) {
    DispatchOptions on;
    on.optimize = OptimizeMode::kApply;
    on.parallelism = width;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const Computation c = comp(seed);
      for (const char* text : kQueryCorpus) {
        const auto off = ctl::evaluate_query(c, text, {});
        const auto on_r = ctl::evaluate_query(c, text, on);
        if (!off.ok || !on_r.ok) continue;
        EXPECT_EQ(off.result.verdict, on_r.result.verdict)
            << "seed " << seed << " width " << width << " " << text;
      }
    }
  }
}

TEST(OptimizeDifferential, RefusedExponentialBecomesAnswerable) {
  // allow_exponential=false: the as-written route refuses (kUnknown), the
  // optimized route answers — Kleene-compatible strengthening, never a
  // contradiction.
  DispatchOptions off, on;
  off.allow_exponential = false;
  on.allow_exponential = false;
  on.optimize = OptimizeMode::kApply;
  const Computation c = comp(11);
  const auto a = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", off);
  const auto b = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", on);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.result.verdict, Verdict::kUnknown);
  EXPECT_NE(b.result.verdict, Verdict::kUnknown);
  // And against ground truth: the unrestricted explicit search agrees.
  const auto truth = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", {});
  EXPECT_EQ(b.result.verdict, truth.result.verdict);
}

// ---- Diagnostics, modes, report surface -----------------------------------

TEST(Optimize, ApplyEmitsW008ChainAndRewritesField) {
  const Computation c = comp(12);
  DispatchOptions opt;
  opt.optimize = OptimizeMode::kApply;
  opt.audit = AuditMode::kLintOnly;
  const auto r = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", opt);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.result.rewrites.empty());
  EXPECT_TRUE(diags_have(r.result.diagnostics, DiagCode::kRewriteApplied));
  bool applied_wording = false;
  for (const Diagnostic& d : r.result.diagnostics)
    if (d.code == DiagCode::kRewriteApplied &&
        d.message.find("applied") != std::string::npos)
      applied_wording = true;
  EXPECT_TRUE(applied_wording);
}

TEST(Optimize, AnalyzeOnlyProposesWithoutChangingTheRoute) {
  const Computation c = comp(12);
  DispatchOptions analyze;
  analyze.optimize = OptimizeMode::kAnalyzeOnly;
  analyze.audit = AuditMode::kLintOnly;
  const auto r = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", analyze);
  ASSERT_TRUE(r.ok);
  const auto off = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", {});
  EXPECT_EQ(r.result.algorithm, off.result.algorithm)
      << "kAnalyzeOnly must evaluate the query as written";
  EXPECT_FALSE(r.result.rewrites.empty());
  bool proposes = false;
  for (const Diagnostic& d : r.result.diagnostics)
    if (d.code == DiagCode::kRewriteApplied &&
        d.message.find("proposes") != std::string::npos)
      proposes = true;
  EXPECT_TRUE(proposes);
}

TEST(Optimize, RedundantSubformulaReportsW009) {
  const Computation c = comp(13);
  DispatchOptions opt;
  opt.optimize = OptimizeMode::kApply;
  opt.audit = AuditMode::kLintOnly;
  const auto r =
      ctl::evaluate_query(c, "EF(v0@P0 >= 1 && v0@P0 >= 1)", opt);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(diags_have(r.result.diagnostics,
                         DiagCode::kRedundantSubformula));
}

TEST(Optimize, OffByDefaultLeavesRewritesEmpty) {
  const Computation c = comp(14);
  const auto r = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", {});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.result.rewrites.empty());
}

TEST(Optimize, CacheServesRepeatedRegistrationTimeQueries) {
  ctl::clear_optimize_cache();
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::uint64_t h0 = reg.counter("analysis.cache_hits").value();
  const std::uint64_t m0 = reg.counter("analysis.cache_misses").value();
  const Computation empty = comp(1, 3, 0);
  ASSERT_EQ(empty.total_events(), 0);
  const Query q = parse("EF(pos(0) + pos(1) > 3)");
  const ctl::OptimizeOutcome first = ctl::optimize_query_cached(empty, q);
  const ctl::OptimizeOutcome again = ctl::optimize_query_cached(empty, q);
  EXPECT_EQ(reg.counter("analysis.cache_hits").value(), h0 + 1);
  EXPECT_EQ(reg.counter("analysis.cache_misses").value(), m0 + 1);
  EXPECT_EQ(ctl::to_string(first.query), ctl::to_string(again.query));
  EXPECT_EQ(first.plan_after, again.plan_after);
  EXPECT_EQ(first.changed, again.changed);
  // Non-empty computations bypass the cache entirely: the cost model
  // prices routes off per-process event counts, so sharing would be
  // unsound. The bypass is a counted miss.
  const ctl::OptimizeOutcome live = ctl::optimize_query_cached(comp(1), q);
  EXPECT_EQ(reg.counter("analysis.cache_hits").value(), h0 + 1);
  EXPECT_EQ(reg.counter("analysis.cache_misses").value(), m0 + 2);
  EXPECT_TRUE(live.changed);
}

TEST(Optimize, ReportCarriesTheRewriteChain) {
  const Computation c = comp(15);
  DispatchOptions opt;
  opt.optimize = OptimizeMode::kApply;
  const auto r = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", opt);
  ASSERT_TRUE(r.ok);
  const std::string doc = report_json(r.result);
  EXPECT_NE(doc.find("\"rewrites\":[{\"rule\":\"infer-classes\""),
            std::string::npos)
      << doc;
  EXPECT_TRUE(json_validate(doc)) << doc;
  const auto off = ctl::evaluate_query(c, "EF(pos(0) + pos(1) > 3)", {});
  EXPECT_NE(report_json(off.result).find("\"rewrites\":[]"),
            std::string::npos);
}

TEST(LintOptimize, AnalyzeSoftensW004WhenInferable) {
  const Computation c = comp(16);
  const Query q = parse("EF(pos(0) + pos(1) > 3)");
  const auto plain = ctl::lint_query(c, q, /*allow_exponential=*/true);
  ASSERT_TRUE(diags_have(plain, DiagCode::kUnclassifiedPredicate));
  const auto soft =
      ctl::lint_query(c, q, true, OptimizeMode::kAnalyzeOnly);
  bool softened = false;
  for (const Diagnostic& d : soft)
    if (d.code == DiagCode::kUnclassifiedPredicate) {
      EXPECT_EQ(d.severity, DiagSeverity::kInfo);
      EXPECT_NE(d.message.find("syntactic inference derives"),
                std::string::npos);
      softened = true;
    }
  EXPECT_TRUE(softened);
  EXPECT_TRUE(diags_have(soft, DiagCode::kRewriteApplied));
}

TEST(LintOptimize, ApplyResidualHasNoCliffForReroutableQueries) {
  const Computation c = comp(17);
  const auto ds = ctl::lint_query(c, parse("EF(pos(0) + pos(1) > 3)"), true,
                                  OptimizeMode::kApply);
  EXPECT_FALSE(diags_have(ds, DiagCode::kExponentialFallback));
  EXPECT_TRUE(diags_have(ds, DiagCode::kRewriteApplied));
}

TEST(LintOptimize, OffMatchesTheDefaultOverload) {
  const Computation c = comp(18);
  for (const char* text : kQueryCorpus) {
    const Query q = parse(text);
    const auto a = ctl::lint_query(c, q, true);
    const auto b = ctl::lint_query(c, q, true, OptimizeMode::kOff);
    ASSERT_EQ(a.size(), b.size()) << text;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].code, b[i].code) << text;
      EXPECT_EQ(a[i].message, b[i].message) << text;
    }
  }
}

// ---- Golden reroute: the acceptance pin -----------------------------------

TEST(OptimizeGolden, W001WorkloadReroutedWithStateCountDrop) {
  const Computation c = comp(2002);
  const std::string query = "EF(pos(0) + pos(1) > 3)";

  DispatchOptions off;
  off.audit = AuditMode::kLintOnly;
  const auto a = ctl::evaluate_query(c, query, off);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(diags_have(a.result.diagnostics, DiagCode::kExponentialFallback))
      << "the workload must be W001-flagged as written";

  DispatchOptions on = off;
  on.optimize = OptimizeMode::kApply;
  const auto b = ctl::evaluate_query(c, query, on);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.result.verdict, b.result.verdict);
  EXPECT_FALSE(
      diags_have(b.result.diagnostics, DiagCode::kExponentialFallback));

  const std::uint64_t off_states =
      a.result.stats.cut_steps + a.result.stats.predicate_evals;
  const std::uint64_t on_states =
      b.result.stats.cut_steps + b.result.stats.predicate_evals;
  EXPECT_LT(on_states, off_states) << "no state-count drop";

  JsonWriter w;
  w.begin_object();
  w.kv("schema", "hbct.optimize_reroute/1");
  w.kv("query", query);
  w.key("off").begin_object();
  w.kv("algorithm", a.result.algorithm);
  w.kv("verdict", to_string(a.result.verdict));
  w.kv("cut_steps", a.result.stats.cut_steps);
  w.kv("predicate_evals", a.result.stats.predicate_evals);
  w.kv("w001", true);
  w.end_object();
  w.key("apply").begin_object();
  w.kv("algorithm", b.result.algorithm);
  w.kv("verdict", to_string(b.result.verdict));
  w.kv("cut_steps", b.result.stats.cut_steps);
  w.kv("predicate_evals", b.result.stats.predicate_evals);
  w.key("rewrites").begin_array();
  for (const RewriteStep& s : b.result.rewrites) w.value(s.rule);
  w.end_array();
  w.end_object();
  w.end_object();
  const std::string doc = w.take() + "\n";

  const std::string path =
      std::string(HBCT_TEST_GOLDEN_DIR) + "/optimize_reroute.json";
  if (std::getenv("HBCT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << path;
    out << doc;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path << " missing; regen with HBCT_REGEN_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), doc)
      << "golden reroute drifted; regen with HBCT_REGEN_GOLDEN=1 and review";
}

}  // namespace
}  // namespace hbct
