// Equilevel predicates (Garg–Streit diagonal-chain class): is_equilevel_cut,
// make_equilevel, the equilevel-scan detector against brute force, planner
// routing, and the class audit that catches false kClassEquilevel claims.
#include <gtest/gtest.h>

#include <string>

#include "analysis/audit.h"
#include "analysis/diagnostics.h"
#include "analysis/plan.h"
#include "detect/brute_force.h"
#include "detect/dispatch.h"
#include "detect/equilevel.h"
#include "poset/generate.h"
#include "predicate/conjunctive.h"
#include "predicate/equilevel.h"
#include "predicate/local.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.num_vars = 2;
  opt.seed = seed;
  return generate_random(opt);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

TEST(Equilevel, IsEquilevelCut) {
  EXPECT_TRUE(is_equilevel_cut(Cut{}));
  EXPECT_TRUE(is_equilevel_cut(Cut(std::vector<std::int32_t>{0, 0, 0})));
  EXPECT_TRUE(is_equilevel_cut(Cut(std::vector<std::int32_t>{2, 2, 2})));
  EXPECT_TRUE(is_equilevel_cut(Cut(std::vector<std::int32_t>{7})));
  EXPECT_FALSE(is_equilevel_cut(Cut(std::vector<std::int32_t>{1, 0})));
  EXPECT_FALSE(is_equilevel_cut(Cut(std::vector<std::int32_t>{2, 2, 3})));
}

TEST(Equilevel, MakeEquilevelClassesAndDescribe) {
  const Computation c = comp(1);
  const PredicatePtr p = make_equilevel(make_true());
  EXPECT_EQ(p->classes(c), kClassEquilevel);
  EXPECT_EQ(effective_classes(*p, c) & kClassEquilevel, kClassEquilevel);
  EXPECT_TRUE(starts_with(p->describe(), "equilevel("));
  // The restriction really confines satisfaction to the diagonal.
  EXPECT_TRUE(p->eval(c, Cut(std::vector<std::int32_t>{2, 2, 2})));
  EXPECT_FALSE(p->eval(c, Cut(std::vector<std::int32_t>{2, 1, 2})));
}

TEST(Equilevel, PlannerRoutesEfEgAgButNeverAf) {
  const Computation c = comp(2);
  const PredShape shape = shape_of(make_equilevel(make_true()), c);
  for (Op op : {Op::kEF, Op::kEG, Op::kAG}) {
    const DetectPlan pl = plan_unary(op, shape, /*allow_exponential=*/true);
    EXPECT_EQ(pl.algo, Algo::kEquilevelScan) << to_string(op);
    EXPECT_STREQ(pl.name, "equilevel-scan");
    EXPECT_FALSE(pl.exponential);
  }
  // AF is not chain-decidable: observations can avoid the diagonal.
  const DetectPlan af = plan_unary(Op::kAF, shape, true);
  EXPECT_NE(af.algo, Algo::kEquilevelScan);
}

class EquilevelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquilevelProperty, MatchesBruteForceOnRandomLattices) {
  const Computation c = comp(GetParam());
  LatticeChecker chk(c);
  // A spread of inner predicates: always true, a progress threshold, and a
  // variable condition — diagonal satisfaction varies per seed.
  const std::vector<PredicatePtr> inners = {
      make_true(),
      make_false(),
      make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 1),
                        var_cmp(1, "v0", Cmp::kGe, 1)}),
      var_cmp(2, "v1", Cmp::kLe, 2),
  };
  for (const PredicatePtr& inner : inners) {
    const PredicatePtr p = make_equilevel(inner);
    for (Op op : {Op::kEF, Op::kEG, Op::kAG}) {
      const DetectResult fast = detect(c, op, p);
      const DetectResult brute = chk.detect(op, *p);
      ASSERT_NE(fast.verdict, Verdict::kUnknown) << p->describe();
      EXPECT_EQ(fast.holds(), brute.holds())
          << to_string(op) << " " << p->describe();
      if (op == Op::kEF)
        EXPECT_TRUE(starts_with(fast.algorithm, "equilevel-scan"))
            << fast.algorithm;
      // An EF witness must be a consistent equilevel cut satisfying p.
      if (op == Op::kEF && fast.holds() && fast.witness_cut) {
        EXPECT_TRUE(is_equilevel_cut(*fast.witness_cut));
        EXPECT_TRUE(c.is_consistent(*fast.witness_cut));
        EXPECT_TRUE(p->eval(c, *fast.witness_cut));
      }
    }
  }
}

TEST_P(EquilevelProperty, DirectDetectorAgreesWithDispatch) {
  const Computation c = comp(GetParam() + 100);
  const PredicatePtr p = make_equilevel(make_true());
  Budget unlimited;
  for (Op op : {Op::kEF, Op::kEG, Op::kAG}) {
    const DetectResult direct = detect_equilevel(c, *p, op, unlimited);
    const DetectResult routed = detect(c, op, p);
    EXPECT_EQ(direct.verdict, routed.verdict) << to_string(op);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquilevelProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Equilevel, TrivialFailShapesForMultiProc) {
  // With n >= 2 and at least one event, AG leaves the diagonal at some
  // consistent cut and EG at its first path step — both fail even for the
  // always-true inner predicate.
  const Computation c = comp(3);
  const PredicatePtr p = make_equilevel(make_true());
  EXPECT_FALSE(detect(c, Op::kAG, p).holds());
  EXPECT_FALSE(detect(c, Op::kEG, p).holds());
  // EF of equilevel(true) always holds: the initial cut is on the chain.
  EXPECT_TRUE(detect(c, Op::kEF, p).holds());
}

TEST(Equilevel, AuditCatchesFalseEquilevelClaims) {
  const Computation c = comp(4);
  // "total >= 1" holds at plenty of off-diagonal cuts; claiming
  // kClassEquilevel for it is a lie the auditor must catch.
  const PredicatePtr liar = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() >= 1; },
      kClassEquilevel, "lying-equilevel");
  const AuditResult r = audit_predicate(liar, c);
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const AuditViolation& v : r.violations)
    found |= v.check == AuditCheck::kEquilevelDiagonal;
  EXPECT_TRUE(found);

  // An honest equilevel predicate audits clean.
  const AuditResult honest = audit_predicate(make_equilevel(make_true()), c);
  EXPECT_TRUE(honest.ok()) << render_diagnostics(audit_diagnostics(honest));
  EXPECT_EQ(honest.checked & kClassEquilevel, kClassEquilevel);
}

}  // namespace
}  // namespace hbct
