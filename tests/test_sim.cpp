// Tests for the simulator substrate and the protocol workloads: structural
// validity, determinism, and the protocols' correctness properties expressed
// as detected predicates.
#include <gtest/gtest.h>

#include "detect/dispatch.h"
#include "poset/trace_io.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/relational.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

using sim::SchedulerKind;
using sim::SimOptions;

SimOptions opts(std::uint64_t seed,
                SchedulerKind k = SchedulerKind::kRandom) {
  SimOptions o;
  o.seed = seed;
  o.scheduler = k;
  return o;
}

TEST(Sim, DeterministicForSeed) {
  auto run = [&] {
    sim::Simulator s = sim::make_random_mixer(4, 10, 2, 0.4);
    return trace_to_string(std::move(s).run(opts(77)));
  };
  EXPECT_EQ(run(), run());
}

TEST(Sim, SeedsChangeTraces) {
  sim::Simulator a = sim::make_random_mixer(4, 10, 2, 0.4);
  sim::Simulator b = sim::make_random_mixer(4, 10, 2, 0.4);
  EXPECT_NE(trace_to_string(std::move(a).run(opts(1))),
            trace_to_string(std::move(b).run(opts(2))));
}

TEST(Sim, AllSchedulersProduceValidComputations) {
  for (SchedulerKind k : {SchedulerKind::kRandom, SchedulerKind::kRoundRobin,
                          SchedulerKind::kDelayBiased}) {
    sim::Simulator s = sim::make_random_mixer(3, 8, 2, 0.5);
    Computation c = std::move(s).run(opts(5, k));
    c.validate();
    EXPECT_GT(c.total_events(), 0);
  }
}

TEST(Sim, NonFifoDeliveryStillValid) {
  SimOptions o = opts(9);
  o.fifo = false;
  sim::Simulator s = sim::make_random_mixer(3, 12, 2, 0.6);
  Computation c = std::move(s).run(o);
  c.validate();
}

// ---- Token mutex -------------------------------------------------------------

PredicatePtr cs_pair(ProcId i, ProcId j) {
  return make_and(PredicatePtr(var_cmp(i, "cs", Cmp::kEq, 1)),
                  PredicatePtr(var_cmp(j, "cs", Cmp::kEq, 1)));
}

class TokenMutex : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenMutex, SafetyHoldsWithoutInjection) {
  sim::Simulator s = sim::make_token_mutex(4, 2, false);
  Computation c = std::move(s).run(opts(GetParam()));
  c.validate();
  for (ProcId i = 0; i < 4; ++i)
    for (ProcId j = i + 1; j < 4; ++j)
      EXPECT_FALSE(detect(c, Op::kEF, cs_pair(i, j)).holds())
          << i << "," << j;
  // Everyone eventually enters: cs@Pi == 1 is possible for each i.
  for (ProcId i = 0; i < 4; ++i)
    EXPECT_TRUE(
        detect(c, Op::kEF, PredicatePtr(var_cmp(i, "cs", Cmp::kEq, 1))).holds());
}

TEST_P(TokenMutex, InjectedViolationIsDetected) {
  sim::Simulator s = sim::make_token_mutex(4, 2, true);
  Computation c = std::move(s).run(opts(GetParam()));
  c.validate();
  bool violated = false;
  for (ProcId i = 0; i < 4 && !violated; ++i)
    for (ProcId j = i + 1; j < 4 && !violated; ++j)
      violated = detect(c, Op::kEF, cs_pair(i, j)).holds();
  EXPECT_TRUE(violated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenMutex,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- Ricart-Agrawala ----------------------------------------------------------

class RaMutex : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaMutex, SafetyAcrossSchedulers) {
  for (SchedulerKind k : {SchedulerKind::kRandom, SchedulerKind::kDelayBiased}) {
    sim::Simulator s = sim::make_ra_mutex(3, 2);
    Computation c = std::move(s).run(opts(GetParam(), k));
    c.validate();
    for (ProcId i = 0; i < 3; ++i)
      for (ProcId j = i + 1; j < 3; ++j)
        EXPECT_FALSE(detect(c, Op::kEF, cs_pair(i, j)).holds());
    // Liveness in the recorded run: every process reached its CS.
    for (ProcId i = 0; i < 3; ++i)
      EXPECT_TRUE(
          detect(c, Op::kEF, PredicatePtr(var_cmp(i, "cs", Cmp::kEq, 1)))
              .holds());
  }
}

TEST_P(RaMutex, TryUntilCriticalHoldsPerProcess) {
  // A[ (try || pre-try idle) U cs ]-style property: the paper's mutual
  // exclusion example. We check the weaker, well-formed disjunctive AU:
  // A[(try==1 || cs==0) U cs==1] on each process — every observation
  // reaches the critical section while the process is not yet in it.
  sim::Simulator s = sim::make_ra_mutex(2, 1);
  Computation c = std::move(s).run(opts(GetParam() + 100));
  for (ProcId i = 0; i < 2; ++i) {
    PredicatePtr p = make_or(PredicatePtr(var_cmp(i, "try", Cmp::kEq, 1)),
                             PredicatePtr(var_cmp(i, "cs", Cmp::kEq, 0)));
    PredicatePtr q = var_cmp(i, "cs", Cmp::kEq, 1);
    EXPECT_TRUE(detect(c, Op::kAU, p, q).holds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaMutex,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---- Leader election -----------------------------------------------------------

class Election : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Election, ExactlyMaxUidWinsEverywhere) {
  const std::int32_t n = 4;
  sim::Simulator s = sim::make_leader_election(n);
  Computation c = std::move(s).run(opts(GetParam()));
  c.validate();

  // AF: in every observation all processes eventually agree on uid n.
  std::vector<LocalPredicatePtr> agree;
  for (ProcId i = 0; i < n; ++i)
    agree.push_back(var_cmp(i, "leader", Cmp::kEq, n));
  EXPECT_TRUE(detect(c, Op::kAF, make_conjunctive(agree)).holds());

  // AG: no process ever believes in a non-max, non-zero leader.
  for (ProcId i = 0; i < n; ++i) {
    PredicatePtr sane = make_or(PredicatePtr(var_cmp(i, "leader", Cmp::kEq, 0)),
                                PredicatePtr(var_cmp(i, "leader", Cmp::kEq, n)));
    EXPECT_TRUE(detect(c, Op::kAG, sane,
                       nullptr, DispatchOptions{})
                    .holds());
  }

  // Exactly one process sets elected.
  std::vector<LocalPredicatePtr> two;
  for (ProcId i = 0; i + 1 < n; ++i)
    two.push_back(var_cmp(i, "elected", Cmp::kEq, 1));
  EXPECT_FALSE(detect(c, Op::kEF, make_conjunctive(two)).holds());
  EXPECT_TRUE(detect(c, Op::kEF,
                     PredicatePtr(var_cmp(n - 1, "elected", Cmp::kEq, 1)))
                  .holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Election,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---- Producer / consumer --------------------------------------------------------

class ProdCons : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProdCons, WindowInvariantIsRegularAndHolds) {
  sim::Simulator s = sim::make_producer_consumer(8, 3);
  Computation c = std::move(s).run(opts(GetParam()));
  c.validate();

  auto inv = diff_le({0, "produced"}, {1, "consumed"}, 3);
  EXPECT_EQ(inv->classes(c) & kClassRegular, kClassRegular);
  DetectResult r = detect(c, Op::kAG, inv);
  EXPECT_TRUE(r.holds());
  EXPECT_EQ(r.algorithm, "A2-ag-linear");

  // The tighter bound is violated somewhere (window actually fills).
  auto tight = diff_le({0, "produced"}, {1, "consumed"}, 0);
  EXPECT_FALSE(detect(c, Op::kAG, tight).holds());

  // All items eventually consumed in every observation.
  EXPECT_TRUE(
      detect(c, Op::kAF, PredicatePtr(var_cmp(1, "consumed", Cmp::kEq, 8)))
          .holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProdCons,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---- Barrier ----------------------------------------------------------------------

class Barrier : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Barrier, PhaseSkewBounded) {
  const std::int32_t n = 4, phases = 3;
  sim::Simulator s = sim::make_barrier(n, phases);
  Computation c = std::move(s).run(opts(GetParam()));
  c.validate();
  for (ProcId i = 1; i < n; ++i)
    for (ProcId j = 1; j < n; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(detect(c, Op::kAG,
                         diff_le({i, "phase"}, {j, "phase"}, 1))
                      .holds())
          << i << "," << j;
    }
  // Everyone finishes all phases on every path.
  std::vector<LocalPredicatePtr> done;
  for (ProcId i = 1; i < n; ++i)
    done.push_back(var_cmp(i, "phase", Cmp::kEq, phases));
  EXPECT_TRUE(detect(c, Op::kAF, make_conjunctive(done)).holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Barrier,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Sim, TokenRingWorkCountsAccumulate) {
  sim::Simulator s = sim::make_token_ring(3, 2);
  Computation c = std::move(s).run(opts(3));
  c.validate();
  // The token made 2 rounds: the final holder flags completion.
  PredicatePtr done = make_disjunctive({var_cmp(0, "done", Cmp::kEq, 1),
                                        var_cmp(1, "done", Cmp::kEq, 1),
                                        var_cmp(2, "done", Cmp::kEq, 1)});
  EXPECT_TRUE(detect(c, Op::kAF, done).holds());
}

TEST(Sim, MaxActionsCapStopsRunaway) {
  sim::SimOptions o = opts(1);
  o.max_actions = 5;
  sim::Simulator s = sim::make_random_mixer(2, 100, 1, 0.3);
  Computation c = std::move(s).run(o);
  EXPECT_LE(c.total_events(), 16);  // a few events per action at most
}

}  // namespace
}  // namespace hbct
