// Program-level checking (Section 3's footnote) and the alternating-bit
// workload.
#include <gtest/gtest.h>

#include "ctl/program_check.h"
#include "detect/dispatch.h"
#include "predicate/conjunctive.h"
#include "predicate/relational.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

std::function<Computation(std::uint64_t)> program(
    std::function<sim::Simulator()> make) {
  return [make = std::move(make)](std::uint64_t seed) {
    sim::SimOptions o;
    o.seed = seed;
    return std::move(make()).run(o);
  };
}

TEST(ProgramCheck, MutualExclusionHoldsAcrossSchedules) {
  auto r = ctl::check_program(
      program([] { return sim::make_ra_mutex(3, 1); }), 10,
      "AG(!(cs@P0 == 1 && cs@P1 == 1) && !(cs@P0 == 1 && cs@P2 == 1) && "
      "!(cs@P1 == 1 && cs@P2 == 1))");
  EXPECT_TRUE(r.holds) << r.error;
  EXPECT_EQ(r.runs, 10u);
  EXPECT_TRUE(r.failing_seeds.empty());
  EXPECT_GT(r.stats.predicate_evals, 0u);
}

TEST(ProgramCheck, InjectedBugFailsSomeSchedulesAndReportsSeeds) {
  auto prog = program([] { return sim::make_token_mutex(3, 2, true); });
  auto r = ctl::check_program(
      prog, 10, "AG(!(cs@P0 == 1 && cs@P2 == 1))");
  EXPECT_FALSE(r.holds);
  ASSERT_FALSE(r.failing_seeds.empty());
  // A reported seed replays to a real refutation.
  Computation c = prog(r.failing_seeds.front());
  auto overlap = make_conjunctive(
      {var_cmp(0, "cs", Cmp::kEq, 1), var_cmp(2, "cs", Cmp::kEq, 1)});
  EXPECT_TRUE(detect(c, Op::kEF, overlap).holds());
}

TEST(ProgramCheck, QueryErrorsSurfaceOnce) {
  auto r = ctl::check_program(
      program([] { return sim::make_token_ring(3, 1); }), 5,
      "AG(nosuchvar@P0 == 1)");
  EXPECT_FALSE(r.holds);
  EXPECT_NE(r.error.find("unknown variable"), std::string::npos);
  EXPECT_EQ(r.runs, 0u);

  auto r2 = ctl::check_program(
      program([] { return sim::make_token_ring(3, 1); }), 5, "AG(((");
  EXPECT_FALSE(r2.holds);
  EXPECT_FALSE(r2.error.empty());
}

TEST(ProgramCheck, ExplicitSeedList) {
  const std::uint64_t seeds[] = {7, 11, 13};
  auto r = ctl::check_program(
      program([] { return sim::make_barrier(3, 2); }),
      std::span<const std::uint64_t>(seeds), "AF(terminated)");
  EXPECT_TRUE(r.holds) << r.error;
  EXPECT_EQ(r.runs, 3u);
}

// ---- Alternating bit -----------------------------------------------------------

class Abp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Abp, ExactlyOnceInOrderDelivery) {
  sim::SimOptions o;
  o.seed = GetParam();
  sim::Simulator s = sim::make_alternating_bit(6, 0.4);
  Computation c = std::move(s).run(o);
  c.validate();

  // Every schedule delivers all items exactly once...
  EXPECT_TRUE(detect(c, Op::kAF,
                     PredicatePtr(var_cmp(1, "delivered", Cmp::kEq, 6)))
                  .holds());
  // ...delivery never runs ahead of transmission (regular predicate)...
  EXPECT_TRUE(
      detect(c, Op::kAG, diff_le({1, "delivered"}, {0, "sent"}, 0)).holds());
  // ...and never falls more than one item behind what was confirmed.
  EXPECT_TRUE(
      detect(c, Op::kAG, diff_le({0, "confirmed"}, {1, "delivered"}, 0))
          .holds());
}

TEST_P(Abp, RetransmissionsAreAbsorbedAsDuplicates) {
  sim::SimOptions o;
  o.seed = GetParam() + 100;
  sim::Simulator s = sim::make_alternating_bit(5, 0.7);
  Computation c = std::move(s).run(o);
  const VarId retr = *c.var_id("retransmits");
  const VarId dups = *c.var_id("dups");
  const std::int64_t r = c.value_at(0, retr, c.num_events(0));
  const std::int64_t d = c.value_at(1, dups, c.num_events(1));
  // Every retransmitted copy that arrives is classified as a duplicate;
  // none is delivered twice (the final delivered count said so above).
  EXPECT_LE(d, r);
  // With p = 0.7 some retransmission almost surely happened; if so the
  // duplicate path is exercised under at least one seed (checked globally
  // below via the suite's many seeds — here only consistency).
  EXPECT_TRUE(detect(c, Op::kAF,
                     PredicatePtr(var_cmp(1, "delivered", Cmp::kEq, 5)))
                  .holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Abp, ::testing::Range<std::uint64_t>(1, 13));

TEST(Abp, ProgramLevelExactlyOnce) {
  auto r = ctl::check_program(
      program([] { return sim::make_alternating_bit(4, 0.5); }), 15,
      "AF(delivered@P1 == 4) && AG(delivered@P1 - sent@P0 <= 0)");
  EXPECT_TRUE(r.holds) << r.error;
  EXPECT_EQ(r.runs, 15u);
}

TEST(Abp, DuplicatePathIsActuallyExercised) {
  // Across the seed range, at least one run retransmits and at least one
  // duplicate reaches the receiver — otherwise these tests prove nothing.
  bool any_retr = false, any_dup = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::SimOptions o;
    o.seed = seed;
    sim::Simulator s = sim::make_alternating_bit(5, 0.7);
    Computation c = std::move(s).run(o);
    any_retr |= c.value_at(0, *c.var_id("retransmits"), c.num_events(0)) > 0;
    any_dup |= c.value_at(1, *c.var_id("dups"), c.num_events(1)) > 0;
  }
  EXPECT_TRUE(any_retr);
  EXPECT_TRUE(any_dup);
}

}  // namespace
}  // namespace hbct
