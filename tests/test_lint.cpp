// Static CTL query lint: warning codes, source-span anchoring, and the
// wiring through evaluate_query / check_program / DispatchOptions::audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/lint.h"
#include "analysis/plan.h"
#include "ctl/program_check.h"
#include "poset/generate.h"
#include "predicate/conjunctive.h"
#include "predicate/local.h"

namespace hbct {
namespace {

using ctl::lint_query;

Computation comp(std::uint64_t seed = 3) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.num_vars = 2;
  opt.seed = seed;
  return generate_random(opt);
}

bool has_code(const std::vector<Diagnostic>& ds, DiagCode c) {
  return std::any_of(ds.begin(), ds.end(),
                     [&](const Diagnostic& d) { return d.code == c; });
}

const Diagnostic& find_code(const std::vector<Diagnostic>& ds, DiagCode c) {
  auto it = std::find_if(ds.begin(), ds.end(),
                         [&](const Diagnostic& d) { return d.code == c; });
  EXPECT_NE(it, ds.end());
  return *it;
}

std::string span_text(const std::string& query, const SourceSpan& s) {
  EXPECT_TRUE(s.valid());
  return query.substr(s.begin, s.end - s.begin);
}

TEST(Lint, FlagsExponentialEgBeforeItRuns) {
  const Computation c = comp();
  // An arithmetic mix the compiler cannot classify: EG falls back to
  // explicit search. The lint predicts it without running any detection.
  const std::string q = "EG(pos(0) + pos(1) > 3)";
  const auto ds = lint_query(c, q);
  ASSERT_TRUE(has_code(ds, DiagCode::kExponentialFallback));
  ASSERT_TRUE(has_code(ds, DiagCode::kUnclassifiedPredicate));

  const Diagnostic& w1 = find_code(ds, DiagCode::kExponentialFallback);
  EXPECT_EQ(w1.severity, DiagSeverity::kWarning);
  EXPECT_NE(w1.message.find("eg-dfs"), std::string::npos);
  // The finding is anchored to the operand subformula in the query text.
  EXPECT_EQ(span_text(q, w1.span), "pos(0) + pos(1) > 3");
}

TEST(Lint, AgOverArbitraryGetsCnfSuggestion) {
  const Computation c = comp();
  const auto ds = lint_query(c, "AG(pos(0) + pos(1) > 3)");
  const Diagnostic& w1 = find_code(ds, DiagCode::kExponentialFallback);
  EXPECT_NE(w1.message.find("ag-dfs"), std::string::npos);
  EXPECT_NE(w1.suggestion.find("CNF"), std::string::npos);
}

TEST(Lint, CleanQueryYieldsNoWarnings) {
  const Computation c = comp();
  for (const char* q : {"EF(v0@P0 >= 1 && v1@P1 <= 3)",
                        "AG(v0@P0 >= 1 && v1@P1 <= 3)",
                        "EF(v0@P0 >= 1 || v1@P1 <= 3)", "terminated"}) {
    const auto ds = lint_query(c, q);
    EXPECT_FALSE(has_code(ds, DiagCode::kExponentialFallback)) << q;
    EXPECT_FALSE(has_code(ds, DiagCode::kUnclassifiedPredicate)) << q;
  }
}

TEST(Lint, NestedTemporalIsW003AnchoredToWholeFormula) {
  const Computation c = comp();
  const std::string q = "EF(v0@P0 >= 1) && AG(v1@P1 <= 3)";
  const auto ds = lint_query(c, q);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].code, DiagCode::kNestedTemporal);
  EXPECT_TRUE(ds[0].span.valid());
  EXPECT_NE(ds[0].message.find("explicit lattice"), std::string::npos);
}

TEST(Lint, UntilOutsideA3IsFlagged) {
  const Computation c = comp();
  // p is not conjunctive-compilable (an arithmetic sum), so A3 is off.
  const std::string q = "E[pos(0) + pos(1) >= 0 U v0@P0 >= 2]";
  const auto ds = lint_query(c, q);
  const Diagnostic& w1 = find_code(ds, DiagCode::kExponentialFallback);
  EXPECT_NE(w1.message.find("eu-dfs"), std::string::npos);
  EXPECT_NE(w1.suggestion.find("A3"), std::string::npos);
  // Plan-level findings appear once, not once per operand.
  EXPECT_EQ(std::count_if(ds.begin(), ds.end(),
                          [](const Diagnostic& d) {
                            return d.code == DiagCode::kExponentialFallback;
                          }),
            1);
}

TEST(Lint, SplitDispatchIsInfoNotWarning) {
  const Computation c = comp();
  // DNF whose disjuncts are conjunctive: ef-or-split, polynomial per
  // branch. The false-initially thresholds keep the disjunction out of the
  // holds-initially observer-independent shortcut, which outranks the split.
  const auto ds = lint_query(
      c, "EF((v0@P0 >= 100 && v1@P1 <= 3) || (v0@P1 >= 200 && v1@P2 <= 1))");
  EXPECT_FALSE(has_code(ds, DiagCode::kExponentialFallback));
  ASSERT_TRUE(has_code(ds, DiagCode::kSplitDispatch));
  EXPECT_EQ(find_code(ds, DiagCode::kSplitDispatch).severity,
            DiagSeverity::kInfo);
}

TEST(Lint, W002OnIntractableClassViaPlanDiagnostics) {
  const Computation c = comp();
  // Observer-independent but nothing more: EG is NP-complete (Thm 5).
  const PredicatePtr p = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() % 2 == 0; },
      kClassObserverIndependent, "parity");
  const PredShape s = shape_of(p, c);
  const DetectPlan plan = plan_unary(Op::kEG, s, true);
  EXPECT_TRUE(plan.np_hard);
  const auto ds = plan_diagnostics(Op::kEG, *p, s, plan);
  ASSERT_TRUE(has_code(ds, DiagCode::kIntractableClass));
  EXPECT_NE(find_code(ds, DiagCode::kIntractableClass).message.find("Thm 5"),
            std::string::npos);
}

TEST(Lint, W005OnClaimedLinearWithoutOracle) {
  const Computation c = comp();
  const PredicatePtr p = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() >= 20; },
      kClassLinear, "claims-linear");
  ASSERT_FALSE(p->has_forbidden());
  const PredShape s = shape_of(p, c);
  const DetectPlan plan = plan_unary(Op::kEF, s, true);
  // Chase-Garg is skipped: the route is something else entirely.
  EXPECT_STRNE(plan.name, "chase-garg-ef");
  const auto ds = plan_diagnostics(Op::kEF, *p, s, plan);
  ASSERT_TRUE(has_code(ds, DiagCode::kMissingOracle));
  EXPECT_NE(find_code(ds, DiagCode::kMissingOracle).message.find("forbidden"),
            std::string::npos);
}

TEST(Lint, W007OnLoadBearingAssertedClasses) {
  const Computation c = comp();
  const PredicatePtr p = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() >= 20; },
      kClassStable, "asserted-stable");
  const PredShape s = shape_of(p, c);
  const DetectPlan plan = plan_unary(Op::kEF, s, true);
  EXPECT_STREQ(plan.name, "stable-final");
  const auto ds = plan_diagnostics(Op::kEF, *p, s, plan);
  ASSERT_TRUE(has_code(ds, DiagCode::kAssertedClasses));
  EXPECT_EQ(find_code(ds, DiagCode::kAssertedClasses).severity,
            DiagSeverity::kInfo);
}

TEST(Lint, EvaluateQueryAttachesPlanAndAnchoredDiagnostics) {
  const Computation c = comp();
  DispatchOptions opt;
  opt.audit = AuditMode::kLintOnly;
  const std::string q = "EG(pos(0) + pos(1) > 3)";
  const auto r = ctl::evaluate_query(c, q, opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.result.plan, "eg-dfs (exponential)");
  ASSERT_TRUE(has_code(r.result.diagnostics, DiagCode::kExponentialFallback));
  // The spans survive the trip through detect(): evaluate_query substitutes
  // the source-anchored lint findings for dispatch's span-less ones.
  const Diagnostic& w1 =
      find_code(r.result.diagnostics, DiagCode::kExponentialFallback);
  EXPECT_EQ(span_text(q, w1.span), "pos(0) + pos(1) > 3");
  // The verdict itself is unaffected by lint-only mode.
  DispatchOptions off;
  const auto r0 = ctl::evaluate_query(c, q, off);
  ASSERT_TRUE(r0.ok);
  EXPECT_EQ(r0.result.verdict, r.result.verdict);
  EXPECT_TRUE(r0.result.plan.empty());
  EXPECT_TRUE(r0.result.diagnostics.empty());
}

TEST(Lint, NestedTemporalEvaluationCarriesW003) {
  const Computation c = comp();
  DispatchOptions opt;
  opt.audit = AuditMode::kLintOnly;
  const auto r =
      ctl::evaluate_query(c, "EF(v0@P0 >= 1) && AG(v1@P1 <= 3)", opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.algorithm, "lattice-nested-ctl");
  ASSERT_TRUE(has_code(r.result.diagnostics, DiagCode::kNestedTemporal));
}

TEST(Lint, CheckProgramSurfacesFindingsOncePerQuery) {
  DispatchOptions opt;
  opt.audit = AuditMode::kLintOnly;
  auto run = [](std::uint64_t seed) { return comp(seed); };
  const auto r =
      ctl::check_program(run, 4, "EG(pos(0) + pos(1) > 3)", opt);
  EXPECT_EQ(r.runs, 4u);
  EXPECT_TRUE(r.error.empty());
  // Findings appear once, not four times.
  EXPECT_EQ(std::count_if(r.diagnostics.begin(), r.diagnostics.end(),
                          [](const Diagnostic& d) {
                            return d.code == DiagCode::kExponentialFallback;
                          }),
            1);
  // And not at all with the analysis off.
  const auto r0 = ctl::check_program(run, 2, "EG(pos(0) + pos(1) > 3)", {});
  EXPECT_TRUE(r0.diagnostics.empty());
}

TEST(Lint, RenderingIncludesCodeAndColumns) {
  const Computation c = comp();
  const auto ds = lint_query(c, "EG(pos(0) + pos(1) > 3)");
  const std::string text = render_diagnostics(ds);
  EXPECT_NE(text.find("W001"), std::string::npos);
  EXPECT_NE(text.find("col"), std::string::npos);
  EXPECT_EQ(to_string(DiagCode::kClassAuditFailed), std::string("E101"));
  EXPECT_EQ(to_string(DiagCode::kExponentialFallback), std::string("W001"));
}

TEST(Lint, ParseFailureYieldsNoFindings) {
  const Computation c = comp();
  EXPECT_TRUE(lint_query(c, "EF(((").empty());
}

}  // namespace
}  // namespace hbct
