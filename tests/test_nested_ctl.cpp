// Nested CTL — an extension beyond the paper's fragment, evaluated on the
// explicit lattice. Validated against hand-labeled expectations and against
// the single-operator fast path where the two overlap.
#include <gtest/gtest.h>

#include "ctl/compile.h"
#include "detect/brute_force.h"
#include "poset/generate.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 5;
  opt.seed = seed;
  return generate_random(opt);
}

TEST(NestedCtl, ParserBuildsNestedTrees) {
  auto r = ctl::parse_query("AG(v0@P0 > 2 || EF(v1@P1 == 0))");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.query.temporal);  // not in the paper fragment
  EXPECT_TRUE(ctl::contains_temporal(r.query.root));
  EXPECT_EQ(ctl::to_string(r.query), "AG((v0@P0 > 2) || (EF(v1@P1 == 0)))");

  auto flat = ctl::parse_query("EG(v0@P0 > 2)");
  ASSERT_TRUE(flat.ok);
  EXPECT_TRUE(flat.query.temporal);  // fragment view preserved
}

TEST(NestedCtl, BooleanOverTemporalAgreesWithSeparateQueries) {
  Computation c = comp(3);
  auto a = ctl::evaluate_query(c, "EF(v0@P0 == 4)");
  auto b = ctl::evaluate_query(c, "AG(v1@P1 >= 0)");
  ASSERT_TRUE(a.ok && b.ok);
  auto both = ctl::evaluate_query(c, "EF(v0@P0 == 4) && AG(v1@P1 >= 0)");
  ASSERT_TRUE(both.ok) << both.error;
  EXPECT_EQ(both.result.holds(), a.result.holds() && b.result.holds());
  EXPECT_EQ(both.algorithm, "lattice-nested-ctl");
}

TEST(NestedCtl, SingleOperatorNestedPathMatchesFastPath) {
  // Force the nested evaluator over a fragment query by wrapping in a
  // redundant conjunction with true-as-temporal.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Computation c = comp(seed);
    const char* base = "EF(v0@P0 >= 3 && v1@P1 <= 2)";
    auto fast = ctl::evaluate_query(c, base);
    auto nested = ctl::evaluate_query(
        c, std::string(base) + " && EF(true)");
    ASSERT_TRUE(fast.ok && nested.ok) << nested.error;
    EXPECT_EQ(nested.result.holds(), fast.result.holds()) << "seed " << seed;
  }
}

TEST(NestedCtl, ResettabilityPattern) {
  // AG(EF(reset)) — "from every reachable state a reset is still
  // reachable" — the canonical genuinely-nested CTL property.
  ComputationBuilder b(2);
  VarId r = b.var("reset");
  b.internal(0);
  b.write(0, r, 1);
  b.internal(0);
  b.write(0, r, 0);
  b.internal(1);
  Computation c = std::move(b).build();
  // reset@P0==1 holds only at position 1 of P0; states past it cannot
  // reach it again.
  auto q = ctl::evaluate_query(c, "AG(EF(reset@P0 == 1))");
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_FALSE(q.result.holds());
  // But EF(AG(reset == 0)) holds: run to the end where reset stays 0.
  auto q2 = ctl::evaluate_query(c, "EF(AG(reset@P0 == 0))");
  ASSERT_TRUE(q2.ok) << q2.error;
  EXPECT_TRUE(q2.result.holds());
}

TEST(NestedCtl, UntilNestedInsideInvariant) {
  sim::Simulator s = sim::make_producer_consumer(4, 2);
  Computation c = std::move(s).run({});
  // From every state, consumption eventually completes while the window
  // invariant keeps holding.
  auto q = ctl::evaluate_query(
      c,
      "AG( E[ produced@P0 - consumed@P1 <= 2 U consumed@P1 == 4 ] "
      "|| consumed@P1 == 4 )");
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_TRUE(q.result.holds());
}

TEST(NestedCtl, DeepNestingEvaluates) {
  Computation c = comp(11);
  auto q = ctl::evaluate_query(c, "EF(AG(EF(v0@P0 >= 0)))");
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_TRUE(q.result.holds());  // innermost is a tautology on values >= 0
}

TEST(NestedCtl, ValidationStillAppliesInsideNesting) {
  Computation c = comp(13);
  auto q = ctl::evaluate_query(c, "AG(EF(bogus@P0 == 1))");
  ASSERT_FALSE(q.ok);
  EXPECT_NE(q.error.find("unknown variable"), std::string::npos);
}

TEST(NestedCtl, LatticeCapIsReportedAsError) {
  Computation c = generate_independent(8, 6);  // 7^8 ≈ 5.7M cuts
  ctl::parse_query("AG(EF(true))");
  DispatchOptions opt;
  opt.budget.max_states = 1000;
  auto q = ctl::evaluate_query(c, "AG(EF(true))", opt);
  ASSERT_FALSE(q.ok);
  EXPECT_NE(q.error.find("exceeds"), std::string::npos);
}

TEST(NestedCtl, NegationOfTemporal) {
  Computation c = comp(17);
  auto a = ctl::evaluate_query(c, "!EF(v0@P0 == 4)");
  auto b = ctl::evaluate_query(c, "EF(v0@P0 == 4)");
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  EXPECT_EQ(a.result.holds(), !b.result.holds());
  EXPECT_EQ(a.algorithm, "lattice-nested-ctl");
}

}  // namespace
}  // namespace hbct
