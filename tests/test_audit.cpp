// Predicate class auditor: clean predicates audit clean, every corrupted
// class bit is caught with a concrete counterexample, oracle and negation
// contracts are enforced, and dispatch degrades to kUnknown (never a wrong
// definite verdict) when a pre-flight audit fails.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/audit.h"
#include "detect/brute_force.h"
#include "detect/dispatch.h"
#include "online/monitor.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/relational.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed, std::int32_t procs = 3,
                 std::int32_t events = 4) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events;
  opt.num_vars = 2;
  opt.seed = seed;
  return generate_random(opt);
}

bool has_check(const AuditResult& r, AuditCheck c) {
  return std::any_of(
      r.violations.begin(), r.violations.end(),
      [&](const AuditViolation& v) { return v.check == c; });
}

TEST(Audit, StructuredPredicatesAuditClean) {
  const Computation c = comp(1);
  const std::vector<PredicatePtr> preds = {
      var_cmp(0, "v0", Cmp::kGe, 1),
      make_conjunctive(
          {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)}),
      make_disjunctive(
          {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)}),
      make_terminated(),
      all_channels_empty(),
      channel_bound_le(0, 1, 0),
      channel_bound_ge(1, 0, 1),
      make_true(),
      make_false(),
  };
  for (const PredicatePtr& p : preds) {
    const AuditResult r = audit_predicate(p, c);
    EXPECT_TRUE(r.exhaustive);
    EXPECT_TRUE(r.ok()) << p->describe() << ": "
                        << render_diagnostics(audit_diagnostics(r));
    // Every claimed bit was actually exercised.
    EXPECT_EQ(r.checked, effective_classes(*p, c)) << p->describe();
    EXPECT_GT(r.cuts_examined, 0u);
  }
}

TEST(Audit, RelationalPredicatesAuditClean) {
  const Computation c = comp(2);
  for (const PredicatePtr& p :
       {sum_le({{0, "v0"}, {1, "v0"}}, 3), sum_ge({{0, "v0"}, {1, "v0"}}, 2),
        diff_le({0, "v0"}, {1, "v0"}, 1)}) {
    const AuditResult r = audit_predicate(p, c);
    EXPECT_TRUE(r.ok()) << p->describe() << ": "
                        << render_diagnostics(audit_diagnostics(r));
  }
}

/// The tentpole property: flip one class bit a predicate did not earn and
/// the auditor must produce a counterexample — across many random
/// computations and predicates, with zero escapes.
TEST(Audit, EveryCorruptedClassBitIsCaught) {
  struct Flip {
    ClassSet bit;
    bool BruteClassCheck::*truth;
    AuditCheck expect;
  };
  const std::vector<Flip> flips = {
      {kClassLinear, &BruteClassCheck::linear, AuditCheck::kLinearMeet},
      {kClassPostLinear, &BruteClassCheck::post_linear,
       AuditCheck::kPostLinearJoin},
      {kClassStable, &BruteClassCheck::stable, AuditCheck::kStableUpClosed},
      {kClassObserverIndependent, &BruteClassCheck::observer_independent,
       AuditCheck::kObserverIndependent},
  };

  std::size_t trials = 0, escapes = 0;
  for (std::uint64_t seed = 1; seed <= 60 && trials < 48; ++seed) {
    const Computation c = comp(seed);
    const LatticeChecker chk(c);

    // A family of deliberately unstructured predicates: thresholds on a
    // variable, parities, and mixed-process conditions.
    const std::int64_t k = static_cast<std::int64_t>(seed % 5);
    const std::vector<PredicatePtr> bases = {
        make_asserted(
            [k](const Computation& cc, const Cut& g) {
              return cc.value_in(0, 0, g) + cc.value_in(1, 0, g) > k;
            },
            0, "sum-threshold"),
        make_asserted(
            [](const Computation&, const Cut& g) {
              return (g[0] + 2 * g[1]) % 3 == 1;
            },
            0, "parity-mix"),
        make_asserted(
            [k](const Computation&, const Cut& g) {
              return g[0] > g[1] + (k % 2);
            },
            0, "coordinate-race"),
    };
    for (const PredicatePtr& base : bases) {
      const BruteClassCheck truth = brute_check_classes(chk, *base);
      for (const Flip& f : flips) {
        if (truth.*(f.truth)) continue;  // the bit would be earned; skip
        // OI is force-granted by effective_classes when p holds initially,
        // making the corrupted claim accidentally true; skip those.
        if (f.bit == kClassObserverIndependent &&
            base->eval(c, c.initial_cut()))
          continue;
        const PredicatePtr corrupted = make_asserted(
            [base](const Computation& cc, const Cut& g) {
              return base->eval(cc, g);
            },
            f.bit, base->describe() + "+flip");
        const AuditResult r = audit_predicate(corrupted, c);
        ++trials;
        if (r.ok()) {
          ++escapes;
          ADD_FAILURE() << "escape: seed " << seed << " " << base->describe()
                        << " with unearned " << classes_to_string(f.bit);
          continue;
        }
        EXPECT_TRUE(has_check(r, f.expect))
            << base->describe() << " " << classes_to_string(f.bit);
        // The counterexample cuts are concrete and on-lattice.
        EXPECT_FALSE(r.violations.front().counterexample.empty());
      }
    }
  }
  EXPECT_GE(trials, 40u) << "property test lost its coverage";
  EXPECT_EQ(escapes, 0u);
}

TEST(Audit, CorruptedConjunctiveAndDisjunctiveDecompositionsCaught) {
  const Computation c = comp(4);
  // "x@P0 pos equals x@P1 pos" is neither conjunctive nor disjunctive.
  auto fn = [](const Computation&, const Cut& g) { return g[0] == g[1]; };
  const AuditResult conj = audit_predicate(
      make_asserted(fn, kClassConjunctive, "diag-conj"), c);
  EXPECT_FALSE(conj.ok());
  const AuditResult disj = audit_predicate(
      make_asserted(fn, kClassDisjunctive, "diag-disj"), c);
  EXPECT_FALSE(disj.ok());
  EXPECT_TRUE(has_check(disj, AuditCheck::kDisjunctiveDecomp) ||
              has_check(disj, AuditCheck::kObserverIndependent));
}

TEST(Audit, CorruptedLocalClaimCaught) {
  const Computation c = comp(5);
  const AuditResult r = audit_predicate(
      make_asserted(
          [](const Computation&, const Cut& g) { return g[0] == g[1]; },
          kClassLocal, "two-proc-as-local"),
      c);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_check(r, AuditCheck::kLocalDependence) ||
              !r.violations.empty());
}

/// A truly linear predicate with a lying advancement oracle: the audit must
/// catch the forbidden() contract violation (E102), which a class check
/// alone cannot see.
TEST(Audit, LyingForbiddenOracleCaught) {
  class LyingLinear final : public Predicate {
   public:
    bool eval(const Computation&, const Cut& g) const override {
      return g[0] >= 2;  // up-closed in proc 0: linear (and stable)
    }
    ClassSet classes(const Computation&) const override {
      return close_classes(kClassLinear);
    }
    std::string describe() const override { return "lying-linear"; }
    bool has_forbidden() const override { return true; }
    ProcId forbidden(const Computation& c, const Cut&) const override {
      return static_cast<ProcId>(c.num_procs() - 1);  // wrong process
    }
  };
  // Message-free computation: every cut is consistent, so a satisfying cut
  // that advances only process 0 provably exists and exposes the lie.
  GenOptions g;
  g.num_procs = 3;
  g.events_per_proc = 3;
  g.p_send = 0;
  g.p_recv = 0;
  g.seed = 6;
  const Computation c = generate_random(g);
  const AuditResult r = audit_predicate(std::make_shared<LyingLinear>(), c);
  EXPECT_TRUE(has_check(r, AuditCheck::kForbiddenOracle));
  const auto ds = audit_diagnostics(r);
  EXPECT_TRUE(std::any_of(ds.begin(), ds.end(), [](const Diagnostic& d) {
    return d.code == DiagCode::kOracleContractViolated;
  }));
}

TEST(Audit, BrokenNegationCaught) {
  class BrokenNot final : public Predicate {
   public:
    bool eval(const Computation&, const Cut& g) const override {
      return g.total() >= 3;
    }
    ClassSet classes(const Computation&) const override { return 0; }
    std::string describe() const override { return "broken-not"; }
    PredicatePtr negate() const override { return make_true(); }  // wrong
  };
  const Computation c = comp(7);
  const AuditResult r = audit_predicate(std::make_shared<BrokenNot>(), c);
  EXPECT_TRUE(has_check(r, AuditCheck::kNegationSemantics));
  AuditOptions no_neg;
  no_neg.check_negation = false;
  EXPECT_TRUE(audit_predicate(std::make_shared<BrokenNot>(), c, no_neg).ok());
}

TEST(Audit, SampledModeStillCatchesStableViolations) {
  const Computation c = comp(8, 4, 6);
  AuditOptions opt;
  opt.max_lattice = 2;  // force sampled mode even on this small lattice
  opt.samples = 32;
  const PredicatePtr p = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() == 2; },
      kClassStable, "spike");  // true once, then false: maximally unstable
  const AuditResult r = audit_predicate(p, c, opt);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_TRUE(has_check(r, AuditCheck::kStableUpClosed));
}

TEST(Audit, SampledModeCleanOnHonestPredicate) {
  const Computation c = comp(9, 4, 6);
  AuditOptions opt;
  opt.max_lattice = 2;
  const AuditResult r = audit_predicate(make_terminated(), c, opt);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_TRUE(r.ok()) << render_diagnostics(audit_diagnostics(r));
}

TEST(Audit, DispatchFullAuditDegradesToUnknownOnViolation) {
  const Computation c = comp(10);
  DispatchOptions opt;
  opt.audit = AuditMode::kFull;
  // Claims stable but is not: the stable-final shortcut would answer EF
  // from the final cut alone, which is wrong for a spike predicate.
  const PredicatePtr liar = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() == 2; },
      kClassStable, "spike");
  const DetectResult r = detect(c, Op::kEF, liar, nullptr, opt);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.bound, BoundReason::kAuditFailed);
  EXPECT_NE(r.algorithm.find("(audit failed)"), std::string::npos);
  EXPECT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(std::string(to_string(BoundReason::kAuditFailed)),
            "audit-failed");

  // Without the audit the corrupted claim is trusted: stable-final answers
  // EF from the final cut alone and gets it wrong (the spike holds at the
  // cut with two events, which every computation here passes through).
  // Exactly the wrong-definite-answer failure mode kFull prevents.
  const DetectResult trusting = detect(c, Op::kEF, liar, nullptr, {});
  EXPECT_EQ(trusting.verdict, Verdict::kFails);
}

TEST(Audit, DispatchFullAuditPassesCleanPredicatesThrough) {
  const Computation c = comp(11);
  DispatchOptions opt;
  opt.audit = AuditMode::kFull;
  const PredicatePtr p = make_conjunctive(
      {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)});
  const DetectResult audited = detect(c, Op::kEF, p, nullptr, opt);
  const DetectResult plain = detect(c, Op::kEF, p, nullptr, {});
  EXPECT_EQ(audited.verdict, plain.verdict);
  EXPECT_EQ(audited.algorithm, plain.algorithm);
  EXPECT_FALSE(audited.plan.empty());
  EXPECT_TRUE(plain.plan.empty());
}

TEST(Audit, UntilAuditChecksBothOperands) {
  const Computation c = comp(12);
  DispatchOptions opt;
  opt.audit = AuditMode::kFull;
  const auto p = make_conjunctive(
      {var_cmp(0, "v0", Cmp::kGe, 0), var_cmp(1, "v1", Cmp::kLe, 9)});
  const PredicatePtr bad_q = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() == 2; },
      kClassStable, "spike");
  const DetectResult r = detect(c, Op::kEU, p, bad_q, opt);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.bound, BoundReason::kAuditFailed);
  // The failing operand is named in the diagnostics.
  EXPECT_TRUE(std::any_of(
      r.diagnostics.begin(), r.diagnostics.end(), [](const Diagnostic& d) {
        return d.message.find("spike") != std::string::npos;
      }));
}

TEST(Audit, MonitorAuditWatchesFlagsLyingStableWatch) {
  OnlineMonitor m(2);
  m.var("x");
  m.internal(0);
  m.write(0, "x", 1);
  m.internal(1);
  m.internal(0);
  m.internal(1);
  // Honest watches audit clean on the observed prefix.
  m.watch_possibly(make_conjunctive({var_cmp(0, "x", Cmp::kGe, 1)}));
  m.watch_stable(make_terminated());
  EXPECT_TRUE(m.audit_watches().empty());
  // A stability claim the observed prefix already refutes: the predicate
  // spikes at two delivered events and is false again at three and four.
  m.watch_stable(make_asserted(
      [](const Computation&, const Cut& g) { return g.total() == 2; },
      kClassStable, "spike"));
  const auto ds = m.audit_watches();
  ASSERT_FALSE(ds.empty());
  EXPECT_EQ(ds[0].code, DiagCode::kClassAuditFailed);
  EXPECT_NE(ds[0].message.find("spike"), std::string::npos);
}

}  // namespace
}  // namespace hbct
