// Unit tests for poset/: vector clocks, computations, cuts, builder,
// generators.
#include <gtest/gtest.h>

#include "poset/builder.h"
#include "poset/computation.h"
#include "poset/generate.h"
#include "poset/vclock.h"

namespace hbct {
namespace {

TEST(VClock, MergeAndOrder) {
  VClock a(3), b(3);
  a[0] = 2;
  b[1] = 1;
  EXPECT_TRUE(a.concurrent(b));
  VClock m = a;
  m.merge(b);
  EXPECT_EQ(m[0], 2);
  EXPECT_EQ(m[1], 1);
  EXPECT_TRUE(a.leq(m));
  EXPECT_TRUE(b.leq(m));
  EXPECT_TRUE(a.before(m));
  EXPECT_FALSE(m.before(a));
  EXPECT_EQ(m.to_string(), "[2,1,0]");
}

/// The canonical 2-process example: P0: a, b(send); P1: c(recv), d.
Computation two_proc() {
  ComputationBuilder b(2);
  b.internal(0);                      // a = (0,1)
  MsgId m = b.send(0, 1);             // b = (0,2)
  b.internal(1);                      // c = (1,1)
  b.receive(1, m);                    // d = (1,2)
  b.internal(1);                      // e = (1,3)
  return std::move(b).build();
}

TEST(Computation, VectorClocksOfHandExample) {
  Computation c = two_proc();
  c.validate();
  EXPECT_EQ(c.vclock(0, 1).raw(), (std::vector<std::int32_t>{1, 0}));
  EXPECT_EQ(c.vclock(0, 2).raw(), (std::vector<std::int32_t>{2, 0}));
  EXPECT_EQ(c.vclock(1, 1).raw(), (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(c.vclock(1, 2).raw(), (std::vector<std::int32_t>{2, 2}));
  EXPECT_EQ(c.vclock(1, 3).raw(), (std::vector<std::int32_t>{2, 3}));
}

TEST(Computation, ReverseClocksOfHandExample) {
  Computation c = two_proc();
  // rvc(e)[j] = number of events on j at-or-above e.
  EXPECT_EQ(c.reverse_vclock(0, 1).raw(), (std::vector<std::int32_t>{2, 2}));
  EXPECT_EQ(c.reverse_vclock(0, 2).raw(), (std::vector<std::int32_t>{1, 2}));
  EXPECT_EQ(c.reverse_vclock(1, 1).raw(), (std::vector<std::int32_t>{0, 3}));
  EXPECT_EQ(c.reverse_vclock(1, 2).raw(), (std::vector<std::int32_t>{0, 2}));
  EXPECT_EQ(c.reverse_vclock(1, 3).raw(), (std::vector<std::int32_t>{0, 1}));
}

TEST(Computation, HappenedBeforeAndConcurrency) {
  Computation c = two_proc();
  const EventId a{0, 1}, b{0, 2}, d{1, 2}, e0{1, 1};
  EXPECT_TRUE(c.happened_before(a, b));
  EXPECT_TRUE(c.happened_before(b, d));
  EXPECT_TRUE(c.happened_before(a, d));  // transitive via the message
  EXPECT_FALSE(c.happened_before(d, a));
  EXPECT_TRUE(c.concurrent(a, e0));
  EXPECT_TRUE(c.concurrent(b, e0));
  EXPECT_FALSE(c.concurrent(a, a));
}

TEST(Computation, ConsistencyAndGeometry) {
  Computation c = two_proc();
  EXPECT_TRUE(c.is_consistent(Cut({0, 0})));
  EXPECT_TRUE(c.is_consistent(Cut({2, 1})));
  EXPECT_FALSE(c.is_consistent(Cut({1, 2})));  // recv without its send
  EXPECT_FALSE(c.is_consistent(Cut({0, 3})));
  EXPECT_FALSE(c.is_consistent(Cut({3, 0})));  // out of range

  const Cut g({2, 1});
  EXPECT_TRUE(c.enabled(g, 1));
  EXPECT_FALSE(c.enabled(g, 0));  // exhausted
  auto en = c.enabled_procs(g);
  EXPECT_EQ(en, (std::vector<ProcId>{1}));

  // frontier of {2,1}: both last events are maximal.
  auto fr = c.frontier_procs(g);
  EXPECT_EQ(fr, (std::vector<ProcId>{0, 1}));

  // In {2,2}, b=(0,2) is NOT maximal (d saw it), so only P1 is removable.
  auto fr2 = c.frontier_procs(Cut({2, 2}));
  EXPECT_EQ(fr2, (std::vector<ProcId>{1}));

  EXPECT_EQ(c.advance(g, 1), Cut({2, 2}));
  EXPECT_EQ(c.retreat(g, 0), Cut({1, 1}));
}

TEST(Computation, JoinAndMeetIrreducibleCuts) {
  Computation c = two_proc();
  EXPECT_EQ(c.join_irreducible_of(1, 2), Cut({2, 2}));  // J(d) = past of d
  EXPECT_EQ(c.join_irreducible_of(0, 1), Cut({1, 0}));
  // M(b) = E \ up-set(b): up(b) = {b, d, e} -> <1, 1>.
  EXPECT_EQ(c.meet_irreducible_of(0, 2), Cut({1, 1}));
  // M(a): up(a) = {a,b,d,e} -> <0,1>.
  EXPECT_EQ(c.meet_irreducible_of(0, 1), Cut({0, 1}));
  EXPECT_EQ(c.meet_irreducible_of(1, 1), Cut({2, 0}));
}

TEST(Computation, VariablesAndTimelines) {
  ComputationBuilder b(2);
  VarId x = b.var("x");
  b.set_initial(0, x, 5);
  b.internal(0);
  b.write(0, x, 7);
  b.internal(0);  // no write: x stays 7
  b.internal(1);
  b.write(1, "x", -1);
  Computation c = std::move(b).build();
  EXPECT_EQ(c.value_at(0, x, 0), 5);
  EXPECT_EQ(c.value_at(0, x, 1), 7);
  EXPECT_EQ(c.value_at(0, x, 2), 7);
  EXPECT_EQ(c.value_at(1, x, 0), 0);  // default initial
  EXPECT_EQ(c.value_at(1, x, 1), -1);
  EXPECT_EQ(c.num_vars(), 1);
  EXPECT_EQ(c.var_name(x), "x");
  EXPECT_FALSE(c.var_id("y").has_value());
}

TEST(Computation, ChannelCounting) {
  ComputationBuilder b(3);
  MsgId m1 = b.send(0, 1);
  MsgId m2 = b.send(0, 1);
  b.send(0, 2);  // never received
  b.receive(1, m1);
  b.receive(1, m2);
  Computation c = std::move(b).build();

  EXPECT_EQ(c.in_transit(0, 1, Cut({2, 0, 0})), 2);
  EXPECT_EQ(c.in_transit(0, 1, Cut({2, 1, 0})), 1);
  EXPECT_EQ(c.in_transit(0, 1, Cut({2, 2, 0})), 0);
  EXPECT_EQ(c.in_transit(0, 2, Cut({3, 0, 0})), 1);
  EXPECT_EQ(c.in_transit(1, 0, Cut({3, 2, 0})), 0);
  EXPECT_EQ(c.in_transit_total(Cut({3, 0, 0})), 3);
  EXPECT_FALSE(c.all_channels_empty(c.final_cut()));  // m3 still in flight
  EXPECT_TRUE(c.all_channels_empty(c.initial_cut()));
  EXPECT_EQ(c.num_messages(), 3);
}

TEST(Computation, PrefixRestriction) {
  Computation c = two_proc();
  Computation p = c.prefix(Cut({2, 1}));
  p.validate();
  EXPECT_EQ(p.num_events(0), 2);
  EXPECT_EQ(p.num_events(1), 1);
  EXPECT_EQ(p.total_events(), 3);
  // The send's receive fell outside: message stays in transit at the end.
  EXPECT_EQ(p.in_transit(0, 1, p.final_cut()), 1);
  // Clocks recomputed identically on the common part.
  EXPECT_EQ(p.vclock(0, 2).raw(), (std::vector<std::int32_t>{2, 0}));
}

TEST(Computation, LabelsRoundTrip) {
  ComputationBuilder b(1);
  b.internal(0);
  b.label(0, "boot");
  b.internal(0);
  Computation c = std::move(b).build();
  auto e = c.find_label("boot");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->proc, 0);
  EXPECT_EQ(e->index, 1);
  EXPECT_FALSE(c.find_label("missing").has_value());
}

TEST(Cut, LatticeOperations) {
  Cut a({2, 0, 1}), b({1, 3, 1});
  EXPECT_EQ(Cut::meet(a, b), Cut({1, 0, 1}));
  EXPECT_EQ(Cut::join(a, b), Cut({2, 3, 1}));
  EXPECT_TRUE(Cut::meet(a, b).subset_of(a));
  EXPECT_TRUE(a.subset_of(Cut::join(a, b)));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_EQ(a.total(), 3);
  EXPECT_EQ(a.to_string(), "<2,0,1>");
  EXPECT_NE(CutHash{}(a), CutHash{}(b));  // overwhelmingly likely
}

TEST(Generate, RandomComputationIsValidAndDeterministic) {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 12;
  opt.seed = 99;
  Computation a = generate_random(opt);
  Computation b = generate_random(opt);
  a.validate();
  EXPECT_EQ(a.total_events(), 48);
  for (ProcId i = 0; i < 4; ++i) EXPECT_EQ(a.num_events(i), 12);
  // Determinism: identical structure and clocks.
  EXPECT_EQ(a.num_messages(), b.num_messages());
  for (ProcId i = 0; i < 4; ++i)
    for (EventIndex k = 1; k <= 12; ++k)
      EXPECT_EQ(a.vclock(i, k), b.vclock(i, k));
}

TEST(Generate, SeedsChangeStructure) {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 12;
  opt.seed = 1;
  Computation a = generate_random(opt);
  opt.seed = 2;
  Computation b = generate_random(opt);
  bool differ = a.num_messages() != b.num_messages();
  for (ProcId i = 0; !differ && i < 4; ++i)
    for (EventIndex k = 1; !differ && k <= 12; ++k)
      differ = !(a.vclock(i, k) == b.vclock(i, k));
  EXPECT_TRUE(differ);
}

TEST(Generate, IndependentAndChainShapes) {
  Computation ind = generate_independent(3, 4);
  ind.validate();
  EXPECT_EQ(ind.num_messages(), 0);

  Computation chain = generate_chain(3, 4);
  chain.validate();
  EXPECT_EQ(chain.num_messages(), 2);
  // Last event of P2 is above everything on P0.
  EXPECT_TRUE(chain.happened_before(EventId{0, 4}, EventId{2, 1}));
}

TEST(Builder, RejectsForeignDeliveries) {
  ComputationBuilder b(3);
  MsgId m = b.send(0, 1);
  EXPECT_DEATH(b.receive(2, m), "wrong process");
}

TEST(Builder, RejectsDoubleReceive) {
  ComputationBuilder b(2);
  MsgId m = b.send(0, 1);
  b.receive(1, m);
  EXPECT_DEATH(b.receive(1, m), "received twice");
}

}  // namespace
}  // namespace hbct
