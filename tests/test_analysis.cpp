// Tests for the concurrency-analysis module (height / Dilworth width /
// concurrent pairs) and the ASCII diagram renderer.
#include <gtest/gtest.h>

#include <set>

#include "poset/analysis.h"
#include "poset/builder.h"
#include "poset/diagram.h"
#include "poset/generate.h"
#include "util/rng.h"

namespace hbct {
namespace {

TEST(Analysis, IndependentGrid) {
  Computation c = generate_independent(3, 4);
  ConcurrencyStats s = analyze(c);
  EXPECT_EQ(s.events, 12);
  EXPECT_EQ(s.height, 4);   // longest chain = one process's events
  EXPECT_EQ(s.width, 3);    // one event per process
  // Pairs on different processes are all concurrent: 3 choose 2 * 4 * 4.
  EXPECT_EQ(s.concurrent_pairs, 3 * 16);
  EXPECT_DOUBLE_EQ(s.parallelism, 3.0);
}

TEST(Analysis, ChainComputation) {
  Computation c = generate_chain(3, 4);
  ConcurrencyStats s = analyze(c);
  EXPECT_EQ(s.events, 12);
  EXPECT_EQ(s.height, 12);  // total order
  EXPECT_EQ(s.width, 1);
  EXPECT_EQ(s.concurrent_pairs, 0);
}

TEST(Analysis, EmptyComputation) {
  ComputationBuilder b(2);
  Computation c = std::move(b).build();
  ConcurrencyStats s = analyze(c);
  EXPECT_EQ(s.height, 0);
  EXPECT_EQ(s.events, 0);
  EXPECT_DOUBLE_EQ(s.parallelism, 0);
}

TEST(Analysis, MessageCreatesChain) {
  // P0: a, b(send); P1: c(recv), d — height = a,b,c,d = 4.
  ComputationBuilder b(2);
  b.internal(0);
  MsgId m = b.send(0, 1);
  b.receive(1, m);
  b.internal(1);
  Computation c = std::move(b).build();
  EXPECT_EQ(computation_height(c), 4);
  EXPECT_EQ(computation_width(c), 1);  // fully ordered
}

TEST(Analysis, WidthSkippedBeyondLimit) {
  Computation c = generate_independent(3, 5);
  ConcurrencyStats s = analyze(c, /*width_limit=*/5);
  EXPECT_EQ(s.width, -1);
  EXPECT_GT(s.height, 0);
}

/// Brute-force max antichain by subset enumeration (small inputs).
std::int32_t brute_width(const Computation& c) {
  std::vector<EventId> ev;
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      ev.push_back(EventId{i, k});
  const std::size_t m = ev.size();
  std::int32_t best = 0;
  for (std::uint32_t mask = 1; mask < (1u << m); ++mask) {
    bool anti = true;
    for (std::size_t a = 0; a < m && anti; ++a)
      for (std::size_t b = a + 1; b < m && anti; ++b)
        if ((mask >> a & 1) && (mask >> b & 1))
          anti = c.concurrent(ev[a], ev[b]);
    if (anti) best = std::max(best, __builtin_popcount(mask));
  }
  return best;
}

/// Brute-force longest chain.
std::int32_t brute_height(const Computation& c) {
  std::vector<EventId> ev;
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      ev.push_back(EventId{i, k});
  // Longest path by Bellman-Ford-style relaxation (order-independent).
  std::vector<std::int32_t> h(ev.size(), 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < ev.size(); ++b)
      for (std::size_t a = 0; a < ev.size(); ++a)
        if (c.happened_before(ev[a], ev[b]) && h[b] < h[a] + 1) {
          h[b] = h[a] + 1;
          changed = true;
        }
  }
  std::int32_t best = ev.empty() ? 0 : 1;
  for (std::int32_t v : h) best = std::max(best, v);
  return best;
}

class AnalysisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisProperty, MatchesBruteForceOnSmallComputations) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;  // 12 events: 2^12 subsets is fine
  opt.p_send = 0.4;
  opt.seed = GetParam();
  Computation c = generate_random(opt);
  EXPECT_EQ(computation_height(c), brute_height(c));
  EXPECT_EQ(computation_width(c), brute_width(c));
}

TEST_P(AnalysisProperty, MirskyAndDilworthBounds) {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 5;
  opt.seed = GetParam() + 100;
  Computation c = generate_random(opt);
  ConcurrencyStats s = analyze(c);
  // chains * antichains bound: height * width >= |E|.
  ASSERT_GE(s.width, 1);
  EXPECT_GE(static_cast<std::int64_t>(s.height) * s.width, s.events);
  EXPECT_LE(s.width, 4);   // at most one event per process
  EXPECT_GE(s.height, 5);  // at least one process's chain
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Diagram, RendersLanesAndMessages) {
  ComputationBuilder b(2);
  VarId x = b.var("x");
  b.internal(0);
  b.write(0, x, 1);
  b.label(0, "boot");
  MsgId m = b.send(0, 1);
  b.receive(1, m);
  Computation c = std::move(b).build();

  const std::string d = render_diagram(c);
  EXPECT_NE(d.find("P0"), std::string::npos);
  EXPECT_NE(d.find("P1"), std::string::npos);
  EXPECT_NE(d.find("boot"), std::string::npos);
  EXPECT_NE(d.find("x=1"), std::string::npos);
  EXPECT_NE(d.find("S->P1(m0)"), std::string::npos);
  EXPECT_NE(d.find("R<-P0(m0)"), std::string::npos);
  // Column alignment: send appears before its receive.
  EXPECT_LT(d.find("S->P1"), d.find("R<-P0"));
}

TEST(Diagram, TruncatesLargeTraces) {
  Computation c = generate_independent(2, 100);
  DiagramOptions opt;
  opt.max_events = 10;
  const std::string d = render_diagram(c, opt);
  EXPECT_NE(d.find("more events"), std::string::npos);
}

TEST(Diagram, OptionsSuppressAnnotations) {
  ComputationBuilder b(1);
  VarId x = b.var("x");
  b.internal(0);
  b.write(0, x, 7);
  b.label(0, "lbl");
  Computation c = std::move(b).build();
  DiagramOptions opt;
  opt.show_writes = false;
  opt.show_labels = false;
  const std::string d = render_diagram(c, opt);
  EXPECT_EQ(d.find("x=7"), std::string::npos);
  EXPECT_EQ(d.find("lbl"), std::string::npos);
  EXPECT_NE(d.find("e1"), std::string::npos);
}

}  // namespace
}  // namespace hbct
