// Long-running streaming stress: pushes >= 1M events through the
// StreamingService across concurrent sessions with prefix GC on, and checks
// that resident memory stays bounded by the open frontier — not by stream
// length — while every session still reaches its correct verdict.
//
// Always compiled (so it cannot rot), registered with ctest only under
// -DHBCT_STRESS_TESTS=ON (label: streaming-stress). Runs standalone:
//
//   ./stress_streaming [total_events]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "predicate/predicate.h"
#include "serve/service.h"

namespace {

int g_failures = 0;

#define STRESS_CHECK(cond, ...)                         \
  do {                                                  \
    if (!(cond)) {                                      \
      ++g_failures;                                     \
      std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__); \
      std::fprintf(stderr, __VA_ARGS__);                \
      std::fprintf(stderr, "\n");                       \
    }                                                   \
  } while (0)

}  // namespace

int main(int argc, char** argv) {
  using namespace hbct;
  using namespace hbct::serve;

  std::int64_t total_events = 1'000'000;
  if (argc > 1) total_events = std::atoll(argv[1]);

  const int kSessions = 8;
  const std::int64_t per_session = total_events / kSessions;
  const std::int64_t rounds_per_phase = 1250;  // 2 events per round
  const std::int64_t phases =
      (per_session + 2 * rounds_per_phase - 1) / (2 * rounds_per_phase);

  StreamingService svc;
  SessionConfig cfg;
  cfg.num_procs = 2;
  cfg.gc_interval_events = 4096;

  std::vector<SessionId> sids;
  for (int k = 0; k < kSessions; ++k) {
    sids.push_back(svc.open(cfg, [](OnlineMonitor& m) {
      m.var("rounds");
      m.watch_stable(make_stable(
          [](const Computation&, const Cut& g) { return g.total() >= 1000; },
          "progress"));
    }));
  }

  {
    wire::Record procs;
    procs.kind = wire::Record::Kind::kProcs;
    procs.nprocs = 2;
    std::string head;
    wire::encode_record(head, procs);
    wire::Record var;
    var.kind = wire::Record::Kind::kVar;
    var.name = "rounds";
    wire::encode_record(head, var);
    for (SessionId sid : sids) svc.post(sid, head);
  }

  std::int64_t max_resident = 0;
  std::uint64_t msg = 0;
  for (std::int64_t phase = 0; phase < phases; ++phase) {
    // One chunk of ping-pong rounds; identical bytes work for every session
    // because msg ids are scoped per session.
    std::string chunk;
    for (std::int64_t r = 0; r < rounds_per_phase; ++r, ++msg) {
      wire::Record send;
      send.kind = wire::Record::Kind::kSend;
      send.proc = 0;
      send.peer = 1;
      send.msg = msg;
      if (r % 64 == 0)
        send.writes.push_back({0, static_cast<std::int64_t>(msg)});
      wire::encode_record(chunk, send);
      wire::Record recv;
      recv.kind = wire::Record::Kind::kRecv;
      recv.proc = 1;
      recv.msg = msg;
      wire::encode_record(chunk, recv);
    }
    for (SessionId sid : sids) svc.post(sid, chunk);
    // Let the pumps catch up periodically and sample residency; without the
    // drain the inbox itself would buffer the whole stream.
    if (phase % 4 == 3 || phase + 1 == phases) {
      svc.drain();
      const std::int64_t resident = svc.resident_events();
      if (resident > max_resident) max_resident = resident;
    }
  }
  for (SessionId sid : sids) svc.finish(sid);
  svc.drain();

  std::int64_t events = 0;
  std::int64_t reclaimed = 0;
  for (SessionId sid : sids) {
    const SessionStats st = svc.stats(sid);
    STRESS_CHECK(svc.state(sid) == SessionState::kFinished, "session %lld: %s",
                 static_cast<long long>(sid), svc.error(sid).c_str());
    events += st.events;
    reclaimed += st.reclaimed_events;
    STRESS_CHECK(svc.poll(sid).size() == 1, "expected exactly one fire");
  }
  STRESS_CHECK(events >= total_events, "streamed %lld < %lld events",
               static_cast<long long>(events),
               static_cast<long long>(total_events));
  // Bounded residency is the whole point: the peak must be a small multiple
  // of sessions * gc_interval, independent of the total stream length.
  const std::int64_t bound = kSessions * cfg.gc_interval_events * 4;
  STRESS_CHECK(max_resident < bound, "peak resident %lld >= bound %lld",
               static_cast<long long>(max_resident),
               static_cast<long long>(bound));
  STRESS_CHECK(reclaimed > events * 9 / 10,
               "GC reclaimed only %lld of %lld events",
               static_cast<long long>(reclaimed),
               static_cast<long long>(events));

  std::printf(
      "stress_streaming: %lld events, %d sessions, peak resident %lld, "
      "reclaimed %lld -> %s\n",
      static_cast<long long>(events), kSessions,
      static_cast<long long>(max_resident), static_cast<long long>(reclaimed),
      g_failures == 0 ? "OK" : "FAILED");
  return g_failures == 0 ? 0 : 1;
}
