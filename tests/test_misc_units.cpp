// Additional unit coverage: describe() strings, result plumbing, the ops
// counters on every algorithm, builder misuse, and query-object evaluation.
#include <gtest/gtest.h>

#include "ctl/compile.h"
#include "detect/ag_linear.h"
#include "detect/conjunctive_gw.h"
#include "detect/dispatch.h"
#include "detect/ef_linear.h"
#include "detect/eg_linear.h"
#include "detect/until.h"
#include "poset/builder.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/classify.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/relational.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 5;
  opt.seed = seed;
  return generate_random(opt);
}

TEST(Describe, AllPredicateFamilies) {
  EXPECT_EQ(var_cmp(1, "x", Cmp::kLt, 4)->describe(), "x@P1 < 4");
  EXPECT_EQ(pos_cmp(2, Cmp::kGe, 3)->describe(), "pos@P2 >= 3");
  EXPECT_EQ(progress_ge(0, 2)->describe(), "progress@P0 >= 2");
  EXPECT_EQ(channel_bound_le(0, 1, 2)->describe(), "intransit(0->1) <= 2");
  EXPECT_EQ(channel_bound_ge(1, 0, 1)->describe(), "intransit(1->0) >= 1");
  EXPECT_EQ(all_channels_empty()->describe(), "channels_empty");
  EXPECT_EQ(diff_le({0, "a"}, {1, "b"}, 3)->describe(), "a@P0 - b@P1 <= 3");
  EXPECT_EQ(sum_le({{0, "a"}, {1, "b"}}, 5)->describe(), "a@P0 + b@P1 <= 5");
  EXPECT_EQ(sum_ge({{0, "a"}}, 5)->describe(), "a@P0 >= 5");
  EXPECT_EQ(make_terminated()->describe(), "terminated");
  EXPECT_EQ(make_true()->describe(), "true");
  auto conj = make_conjunctive({var_cmp(0, "x", Cmp::kEq, 1),
                                var_cmp(1, "y", Cmp::kNe, 2)});
  EXPECT_EQ(conj->describe(), "x@P0 == 1 && y@P1 != 2");
  auto disj = make_disjunctive({var_cmp(0, "x", Cmp::kEq, 1),
                                var_cmp(1, "y", Cmp::kNe, 2)});
  EXPECT_EQ(disj->describe(), "x@P0 == 1 || y@P1 != 2");
  EXPECT_EQ(make_not(make_true())->describe(), "false");
}

TEST(Describe, CmpNamesRoundTrip) {
  for (Cmp op : {Cmp::kLt, Cmp::kLe, Cmp::kEq, Cmp::kNe, Cmp::kGe, Cmp::kGt}) {
    // Round-trip through the parser: the printed operator must re-parse.
    std::string q = std::string("EF(x@P0 ") + to_string(op) + " 3)";
    EXPECT_TRUE(ctl::parse_query(q).ok) << q;
  }
}

TEST(CmpEval, TruthTable) {
  EXPECT_TRUE(cmp_eval(Cmp::kLt, 1, 2));
  EXPECT_FALSE(cmp_eval(Cmp::kLt, 2, 2));
  EXPECT_TRUE(cmp_eval(Cmp::kLe, 2, 2));
  EXPECT_TRUE(cmp_eval(Cmp::kEq, -3, -3));
  EXPECT_TRUE(cmp_eval(Cmp::kNe, 1, 2));
  EXPECT_TRUE(cmp_eval(Cmp::kGe, 2, 2));
  EXPECT_TRUE(cmp_eval(Cmp::kGt, 3, 2));
  EXPECT_FALSE(cmp_eval(Cmp::kGt, 2, 3));
}

TEST(Stats, EveryAlgorithmCountsWork) {
  Computation c = comp(5);
  auto conj = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 9),
                                var_cmp(1, "v0", Cmp::kLe, 9)});
  PredicatePtr lin = make_and(PredicatePtr(conj), channel_bound_le(0, 1, 99));
  EXPECT_GT(detect_ef_conjunctive(c, *conj).stats.predicate_evals, 0u);
  EXPECT_GT(detect_af_conjunctive(c, *conj).stats.predicate_evals, 0u);
  EXPECT_GT(detect_eg_conjunctive(c, *conj).stats.predicate_evals, 0u);
  EXPECT_GT(detect_ag_conjunctive(c, *conj).stats.predicate_evals, 0u);
  EXPECT_GT(detect_eg_linear(c, *lin).stats.predicate_evals, 0u);
  EXPECT_GT(detect_ag_linear(c, *lin).stats.predicate_evals, 0u);
  EXPECT_GT(detect_ef_linear(c, *lin).stats.predicate_evals, 0u);
  PredicatePtr q = all_channels_empty();
  EXPECT_GT(detect_eu(c, *conj, *q).stats.predicate_evals, 0u);
}

TEST(QueryObjects, EvaluateParsedQueryDirectly) {
  Computation c = comp(7);
  auto parsed = ctl::parse_query("AG(v0@P0 >= 0)");
  ASSERT_TRUE(parsed.ok);
  auto r = ctl::evaluate_query(c, parsed.query);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.result.holds());
  // Same verdict as the text path.
  EXPECT_EQ(r.result.holds(),
            ctl::evaluate_query(c, "AG(v0@P0 >= 0)").result.holds());
}

TEST(Builder, WriteBeforeEventDies) {
  ComputationBuilder b(2);
  VarId x = b.var("x");
  EXPECT_DEATH(b.write(0, x, 1), "no event to annotate");
}

TEST(Builder, SelfSendDies) {
  ComputationBuilder b(2);
  EXPECT_DEATH(b.send(1, 1), "self-messages");
}

TEST(Builder, UnknownVariableWriteDies) {
  ComputationBuilder b(1);
  b.internal(0);
  EXPECT_DEATH(b.write(0, static_cast<VarId>(5), 1), "");
}

TEST(Dispatch, WitnessCutsPlumbThroughEveryRoute) {
  Computation c = comp(11);
  // EF conjunctive: least cut present on success.
  auto conj = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 0)});
  DetectResult ef = detect(c, Op::kEF, conj);
  ASSERT_TRUE(ef.holds());
  EXPECT_TRUE(ef.witness_cut.has_value());
  // AG failure: violating cut present.
  auto never = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 100)});
  DetectResult ag = detect(c, Op::kAG, never);
  ASSERT_FALSE(ag.holds());
  ASSERT_TRUE(ag.witness_cut.has_value());
  EXPECT_FALSE(never->eval(c, *ag.witness_cut));
}

TEST(Classify, ReportsForEveryFamily) {
  Computation c = comp(13);
  struct Row {
    PredicatePtr p;
    const char* expect_class;
  };
  const Row rows[] = {
      {make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 3)}), "conjunctive"},
      {make_disjunctive({var_cmp(0, "v0", Cmp::kLe, 3),
                         var_cmp(1, "v0", Cmp::kLe, 3)}),
       "disjunctive"},
      {all_channels_empty(), "regular"},
      {make_terminated(), "observer-independent"},
      {channel_bound_ge(0, 1, 1), "post-linear"},
  };
  for (const Row& row : rows) {
    ClassReport r = classify(*row.p, c);
    EXPECT_NE(classes_to_string(r.classes).find(row.expect_class),
              std::string::npos)
        << row.p->describe() << " -> " << classes_to_string(r.classes);
  }
  // Arbitrary predicates report "arbitrary" and exponential dispatch.
  auto arb = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() == 2; }, 0,
      "probe");
  ClassReport r = classify(*arb, c);
  EXPECT_EQ(classes_to_string(r.classes), "arbitrary");
  EXPECT_NE(r.eg.find("exponential"), std::string::npos);
}

TEST(DetectResult, AlgorithmNamesAreStable) {
  // These strings are part of the reporting surface (EXPERIMENTS.md and the
  // benches key off them); lock them down.
  Computation c = comp(17);
  auto conj = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 9),
                                var_cmp(1, "v0", Cmp::kLe, 9)});
  EXPECT_EQ(detect_ef_conjunctive(c, *conj).algorithm, "gw-weak-conjunctive");
  EXPECT_EQ(detect_af_conjunctive(c, *conj).algorithm,
            "gw-strong-conjunctive");
  EXPECT_EQ(detect_eg_conjunctive(c, *conj).algorithm, "eg-conjunctive-scan");
  EXPECT_EQ(detect_ag_conjunctive(c, *conj).algorithm, "ag-conjunctive-scan");
  PredicatePtr lin = make_and(PredicatePtr(conj), channel_bound_le(0, 1, 9));
  EXPECT_EQ(detect_eg_linear(c, *lin).algorithm, "A1-eg-linear");
  EXPECT_EQ(detect_ag_linear(c, *lin).algorithm, "A2-ag-linear");
  EXPECT_EQ(detect_ef_linear(c, *lin).algorithm, "chase-garg-ef");
  EXPECT_EQ(detect_eu(c, *conj, *lin).algorithm, "A3-eu");
}

}  // namespace
}  // namespace hbct
