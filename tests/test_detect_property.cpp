// The core correctness suite: every polynomial detection algorithm is
// validated against the explicit-lattice CTL model checker on hundreds of
// random computations and predicates. This is where Theorems 2, 7 and the
// GW constructions earn their keep.
#include <gtest/gtest.h>

#include "detect/ag_linear.h"
#include "detect/brute_force.h"
#include "detect/conjunctive_gw.h"
#include "detect/disjunctive.h"
#include "detect/dispatch.h"
#include "detect/ef_linear.h"
#include "detect/eg_linear.h"
#include "detect/stable_oi.h"
#include "detect/until.h"
#include "poset/generate.h"
#include "util/rng.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/relational.h"

namespace hbct {
namespace {

Computation random_comp(std::uint64_t seed, std::int32_t procs = 3,
                        std::int32_t events = 4) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.p_recv = 0.35;
  opt.value_lo = 0;
  opt.value_hi = 5;
  opt.seed = seed;
  return generate_random(opt);
}

/// Random local predicate over v0/v1 with a threshold chosen to be
/// sometimes-true-sometimes-false at the generator's value range.
LocalPredicatePtr random_local(Rng& rng, std::int32_t procs) {
  const ProcId p = static_cast<ProcId>(rng.next_below(procs));
  const char* var = rng.next_bool() ? "v0" : "v1";
  const Cmp op = static_cast<Cmp>(rng.next_below(6));
  const std::int64_t k = rng.next_in(0, 5);
  return var_cmp(p, var, op, k);
}

ConjunctivePredicatePtr random_conjunctive(Rng& rng, std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  const std::size_t m = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i) ls.push_back(random_local(rng, procs));
  return make_conjunctive(std::move(ls));
}

DisjunctivePredicatePtr random_disjunctive(Rng& rng, std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  const std::size_t m = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < m; ++i) ls.push_back(random_local(rng, procs));
  return make_disjunctive(std::move(ls));
}

/// Random linear predicate: conjunctive, channel bound, or a conjunction of
/// the two (And of linear is linear).
PredicatePtr random_linear(Rng& rng, std::int32_t procs) {
  switch (rng.next_below(4)) {
    case 0:
      return random_conjunctive(rng, procs);
    case 1:
      return channel_bound_le(
          static_cast<ProcId>(rng.next_below(procs)),
          static_cast<ProcId>(rng.next_below(procs)),
          static_cast<std::int32_t>(rng.next_below(2)));
    case 2:
      return all_channels_empty();
    default:
      return make_and(PredicatePtr(random_conjunctive(rng, procs)),
                      all_channels_empty());
  }
}

class DetectProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectProperty, EfLinearMatchesBruteAndIsLeast) {
  Rng rng(GetParam() * 7 + 1);
  Computation c = random_comp(GetParam());
  LatticeChecker chk(c);
  for (int round = 0; round < 5; ++round) {
    PredicatePtr p = random_linear(rng, c.num_procs());
    ASSERT_NE(effective_classes(*p, c) & kClassLinear, 0u);
    DetectResult fast = detect_ef_linear(c, *p);
    DetectResult slow = chk.detect(Op::kEF, *p);
    ASSERT_EQ(fast.holds(), slow.holds()) << p->describe();
    if (fast.holds()) {
      const Cut& iq = *fast.witness_cut;
      EXPECT_TRUE(p->eval(c, iq));
      // Minimality: every satisfying lattice cut contains I_p.
      const auto labels = chk.label(*p);
      for (NodeId v = 0; v < chk.lattice().size(); ++v)
        if (labels[v]) EXPECT_TRUE(iq.subset_of(chk.lattice().cut(v)));
    }
  }
}

TEST_P(DetectProperty, EfPostLinearMatchesBruteAndIsGreatest) {
  Rng rng(GetParam() * 13 + 5);
  Computation c = random_comp(GetParam() + 50);
  LatticeChecker chk(c);
  for (int round = 0; round < 5; ++round) {
    // Post-linear: channel >= bounds, conjunctive (regular), sums >= k of
    // non-decreasing vars are not guaranteed here, so stick to regular ones.
    PredicatePtr p =
        round % 2 ? PredicatePtr(random_conjunctive(rng, c.num_procs()))
                  : channel_bound_ge(
                        static_cast<ProcId>(rng.next_below(c.num_procs())),
                        static_cast<ProcId>(rng.next_below(c.num_procs())),
                        1);
    ASSERT_NE(effective_classes(*p, c) & kClassPostLinear, 0u);
    DetectResult fast = detect_ef_post_linear(c, *p);
    DetectResult slow = chk.detect(Op::kEF, *p);
    ASSERT_EQ(fast.holds(), slow.holds()) << p->describe();
    if (fast.holds()) {
      const Cut& gp = *fast.witness_cut;
      EXPECT_TRUE(p->eval(c, gp));
      const auto labels = chk.label(*p);
      for (NodeId v = 0; v < chk.lattice().size(); ++v)
        if (labels[v]) EXPECT_TRUE(chk.lattice().cut(v).subset_of(gp));
    }
  }
}

TEST_P(DetectProperty, EgA1MatchesBruteWithValidWitness) {
  Rng rng(GetParam() * 31 + 2);
  Computation c = random_comp(GetParam() + 100);
  LatticeChecker chk(c);
  for (int round = 0; round < 5; ++round) {
    PredicatePtr p = random_linear(rng, c.num_procs());
    DetectResult fast = detect_eg_linear(c, *p);
    DetectResult slow = chk.detect(Op::kEG, *p);
    ASSERT_EQ(fast.holds(), slow.holds()) << p->describe();
    if (fast.holds()) {
      // The witness is a full maximal cut sequence satisfying p throughout.
      const auto& path = fast.witness_path;
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), c.initial_cut());
      EXPECT_EQ(path.back(), c.final_cut());
      for (std::size_t i = 0; i < path.size(); ++i) {
        EXPECT_TRUE(p->eval(c, path[i]));
        if (i) EXPECT_EQ(path[i].total(), path[i - 1].total() + 1);
      }
    }
  }
}

TEST_P(DetectProperty, A1ChoicePolicyIsIrrelevant) {
  // Theorem 2: any satisfying predecessor works. The greedy and the
  // randomized policies must agree (with each other and the oracle) on
  // every input, across several random choice seeds.
  Rng rng(GetParam() * 29 + 4);
  Computation c = random_comp(GetParam() + 700);
  LatticeChecker chk(c);
  for (int round = 0; round < 3; ++round) {
    PredicatePtr p = random_linear(rng, c.num_procs());
    const bool expected = chk.detect(Op::kEG, *p).holds();
    EXPECT_EQ(detect_eg_linear(c, *p).holds(), expected) << p->describe();
    for (std::uint64_t cs = 1; cs <= 3; ++cs) {
      DetectResult r = detect_eg_linear_randomized(c, *p, cs);
      EXPECT_EQ(r.holds(), expected) << p->describe() << " seed " << cs;
      if (r.holds()) {
        for (const Cut& g : r.witness_path) EXPECT_TRUE(p->eval(c, g));
      }
    }
  }
}

TEST_P(DetectProperty, AgA2MatchesBruteWithViolatingWitness) {
  Rng rng(GetParam() * 17 + 3);
  Computation c = random_comp(GetParam() + 150);
  LatticeChecker chk(c);
  for (int round = 0; round < 5; ++round) {
    PredicatePtr p = random_linear(rng, c.num_procs());
    DetectResult fast = detect_ag_linear(c, *p);
    DetectResult slow = chk.detect(Op::kAG, *p);
    ASSERT_EQ(fast.holds(), slow.holds()) << p->describe();
    if (!fast.holds()) {
      ASSERT_TRUE(fast.witness_cut.has_value());
      EXPECT_TRUE(c.is_consistent(*fast.witness_cut));
      EXPECT_FALSE(p->eval(c, *fast.witness_cut));
    }
  }
}

TEST_P(DetectProperty, EgAgPostLinearDuals) {
  Rng rng(GetParam() * 23 + 9);
  Computation c = random_comp(GetParam() + 200);
  LatticeChecker chk(c);
  for (int round = 0; round < 4; ++round) {
    PredicatePtr p = PredicatePtr(random_conjunctive(rng, c.num_procs()));
    EXPECT_EQ(detect_eg_post_linear(c, *p).holds(),
              chk.detect(Op::kEG, *p).holds());
    EXPECT_EQ(detect_ag_post_linear(c, *p).holds(),
              chk.detect(Op::kAG, *p).holds());
  }
}

TEST_P(DetectProperty, ConjunctiveAllFourOperators) {
  Rng rng(GetParam() * 41 + 11);
  Computation c = random_comp(GetParam() + 250);
  LatticeChecker chk(c);
  for (int round = 0; round < 6; ++round) {
    auto p = random_conjunctive(rng, c.num_procs());
    EXPECT_EQ(detect_ef_conjunctive(c, *p).holds(),
              chk.detect(Op::kEF, *p).holds())
        << p->describe();
    EXPECT_EQ(detect_af_conjunctive(c, *p).holds(),
              chk.detect(Op::kAF, *p).holds())
        << p->describe();
    EXPECT_EQ(detect_eg_conjunctive(c, *p).holds(),
              chk.detect(Op::kEG, *p).holds())
        << p->describe();
    EXPECT_EQ(detect_ag_conjunctive(c, *p).holds(),
              chk.detect(Op::kAG, *p).holds())
        << p->describe();
  }
}

TEST_P(DetectProperty, ConjunctiveWeakEfAgreesWithChaseGarg) {
  Rng rng(GetParam() * 43 + 13);
  Computation c = random_comp(GetParam() + 300);
  for (int round = 0; round < 6; ++round) {
    auto p = random_conjunctive(rng, c.num_procs());
    DetectResult gw = detect_ef_conjunctive(c, *p);
    DetectResult cg = detect_ef_linear(c, *p);
    ASSERT_EQ(gw.holds(), cg.holds());
    if (gw.holds()) EXPECT_EQ(*gw.witness_cut, *cg.witness_cut);
  }
}

TEST_P(DetectProperty, DisjunctiveAllFourOperators) {
  Rng rng(GetParam() * 47 + 17);
  Computation c = random_comp(GetParam() + 350);
  LatticeChecker chk(c);
  for (int round = 0; round < 6; ++round) {
    auto p = random_disjunctive(rng, c.num_procs());
    EXPECT_EQ(detect_ef_disjunctive(c, *p).holds(),
              chk.detect(Op::kEF, *p).holds())
        << p->describe();
    EXPECT_EQ(detect_af_disjunctive(c, *p).holds(),
              chk.detect(Op::kAF, *p).holds())
        << p->describe();
    EXPECT_EQ(detect_eg_disjunctive(c, *p).holds(),
              chk.detect(Op::kEG, *p).holds())
        << p->describe();
    EXPECT_EQ(detect_ag_disjunctive(c, *p).holds(),
              chk.detect(Op::kAG, *p).holds())
        << p->describe();
  }
}

TEST_P(DetectProperty, UntilA3MatchesBrute) {
  Rng rng(GetParam() * 53 + 19);
  Computation c = random_comp(GetParam() + 400);
  LatticeChecker chk(c);
  for (int round = 0; round < 6; ++round) {
    auto p = random_conjunctive(rng, c.num_procs());
    PredicatePtr q = random_linear(rng, c.num_procs());
    DetectResult fast = detect_eu(c, *p, *q);
    DetectResult slow = chk.detect(Op::kEU, *p, q.get());
    ASSERT_EQ(fast.holds(), slow.holds())
        << "p = " << p->describe() << "  q = " << q->describe();
    if (fast.holds()) {
      // Validate the witness prefix: consecutive covers, p before the end,
      // q at the end (which is I_q by Theorem 7).
      const auto& path = fast.witness_path;
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), c.initial_cut());
      EXPECT_TRUE(q->eval(c, path.back()));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(p->eval(c, path[i]));
        EXPECT_EQ(path[i + 1].total(), path[i].total() + 1);
        EXPECT_TRUE(path[i].subset_of(path[i + 1]));
      }
    }
  }
}

TEST_P(DetectProperty, AuDisjunctiveMatchesBrute) {
  Rng rng(GetParam() * 59 + 23);
  Computation c = random_comp(GetParam() + 450);
  LatticeChecker chk(c);
  for (int round = 0; round < 6; ++round) {
    auto p = random_disjunctive(rng, c.num_procs());
    auto q = random_disjunctive(rng, c.num_procs());
    DetectResult fast = detect_au_disjunctive(c, *p, *q);
    DetectResult slow = chk.detect(Op::kAU, *p, q.get());
    ASSERT_EQ(fast.holds(), slow.holds())
        << "p = " << p->describe() << "  q = " << q->describe();
  }
}

TEST_P(DetectProperty, DfsDetectorsMatchBruteOnArbitraryPredicates) {
  Rng rng(GetParam() * 61 + 29);
  Computation c = random_comp(GetParam() + 500);
  LatticeChecker chk(c);
  for (int round = 0; round < 3; ++round) {
    // Deliberately structureless: parity of total events + variable probe.
    const std::int64_t k = rng.next_in(0, 5);
    const ProcId pr = static_cast<ProcId>(rng.next_below(c.num_procs()));
    auto p = make_asserted(
        [k, pr](const Computation& cc, const Cut& g) {
          return (g.total() % 2 == k % 2) ||
                 cc.value_in(pr, 0, g) > k;
        },
        0, "arbitrary-probe");
    EXPECT_EQ(detect_ef_dfs(c, *p).holds(), chk.detect(Op::kEF, *p).holds());
    EXPECT_EQ(detect_af_dfs(c, *p).holds(), chk.detect(Op::kAF, *p).holds());
    EXPECT_EQ(detect_eg_dfs(c, *p).holds(), chk.detect(Op::kEG, *p).holds());
    EXPECT_EQ(detect_ag_dfs(c, *p).holds(), chk.detect(Op::kAG, *p).holds());
  }
}

TEST_P(DetectProperty, EuAuDfsMatchBrute) {
  Rng rng(GetParam() * 67 + 31);
  Computation c = random_comp(GetParam() + 550);
  LatticeChecker chk(c);
  for (int round = 0; round < 3; ++round) {
    PredicatePtr p = random_linear(rng, c.num_procs());
    PredicatePtr q = PredicatePtr(random_disjunctive(rng, c.num_procs()));
    EXPECT_EQ(detect_eu_dfs(c, *p, *q).holds(),
              chk.detect(Op::kEU, *p, q.get()).holds());
    EXPECT_EQ(detect_au_dfs(c, p, q).holds(),
              chk.detect(Op::kAU, *p, q.get()).holds());
  }
}

TEST_P(DetectProperty, DispatchAgreesWithBruteOnEverything) {
  Rng rng(GetParam() * 71 + 37);
  Computation c = random_comp(GetParam() + 600);
  LatticeChecker chk(c);
  for (int round = 0; round < 4; ++round) {
    std::vector<PredicatePtr> preds = {
        PredicatePtr(random_conjunctive(rng, c.num_procs())),
        PredicatePtr(random_disjunctive(rng, c.num_procs())),
        random_linear(rng, c.num_procs()), make_terminated()};
    for (const auto& p : preds) {
      for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
        EXPECT_EQ(detect(c, op, p).holds(), chk.detect(op, *p).holds())
            << to_string(op) << " " << p->describe();
      }
    }
    PredicatePtr up = PredicatePtr(random_conjunctive(rng, c.num_procs()));
    PredicatePtr uq = random_linear(rng, c.num_procs());
    EXPECT_EQ(detect(c, Op::kEU, up, uq).holds(),
              chk.detect(Op::kEU, *up, uq.get()).holds());
    PredicatePtr ap = PredicatePtr(random_disjunctive(rng, c.num_procs()));
    PredicatePtr aq = PredicatePtr(random_disjunctive(rng, c.num_procs()));
    EXPECT_EQ(detect(c, Op::kAU, ap, aq).holds(),
              chk.detect(Op::kAU, *ap, aq.get()).holds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectProperty,
                         ::testing::Range<std::uint64_t>(1, 81));

// Wider/narrower shapes at a few seeds to stress different topologies.
class DetectShapes
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {
};

TEST_P(DetectShapes, DispatchMatchesBruteAcrossShapes) {
  auto [procs, events] = GetParam();
  Rng rng(static_cast<std::uint64_t>(procs) * 1000 + events);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Computation c = random_comp(seed * 77, procs, events);
    LatticeChecker chk(c);
    PredicatePtr p = PredicatePtr(random_conjunctive(rng, procs));
    PredicatePtr d = PredicatePtr(random_disjunctive(rng, procs));
    for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
      EXPECT_EQ(detect(c, op, p).holds(), chk.detect(op, *p).holds());
      EXPECT_EQ(detect(c, op, d).holds(), chk.detect(op, *d).holds());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DetectShapes,
    ::testing::Values(std::make_tuple(1, 8), std::make_tuple(2, 8),
                      std::make_tuple(4, 3), std::make_tuple(5, 2),
                      std::make_tuple(2, 12)));

}  // namespace
}  // namespace hbct
