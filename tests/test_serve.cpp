// Streaming service tests: the wire record codec, single-session ingestion
// with prefix GC, and the multi-tenant service — concurrent sessions, chunk
// splitting at arbitrary byte boundaries, failure isolation, and metrics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ctl/parser.h"
#include "obs/trace.h"
#include "predicate/local.h"
#include "predicate/predicate.h"
#include "serve/service.h"
#include "serve/session.h"

namespace hbct {
namespace {

using serve::Session;
using serve::SessionConfig;
using serve::SessionId;
using serve::SessionState;
using serve::StreamingService;
using wire::Record;

Record procs_rec(std::int32_t n) {
  Record r;
  r.kind = Record::Kind::kProcs;
  r.nprocs = n;
  return r;
}
Record var_rec(std::string name) {
  Record r;
  r.kind = Record::Kind::kVar;
  r.name = std::move(name);
  return r;
}
Record init_rec(ProcId p, std::uint32_t var, std::int64_t value) {
  Record r;
  r.kind = Record::Kind::kInit;
  r.proc = p;
  r.var = var;
  r.value = value;
  return r;
}
Record internal_rec(ProcId p) {
  Record r;
  r.kind = Record::Kind::kInternal;
  r.proc = p;
  return r;
}
Record send_rec(ProcId p, ProcId to, std::uint64_t msg) {
  Record r;
  r.kind = Record::Kind::kSend;
  r.proc = p;
  r.peer = to;
  r.msg = msg;
  return r;
}
Record recv_rec(ProcId p, std::uint64_t msg) {
  Record r;
  r.kind = Record::Kind::kRecv;
  r.proc = p;
  r.msg = msg;
  return r;
}
Record end_rec() {
  Record r;
  r.kind = Record::Kind::kEnd;
  return r;
}

std::string enc(const std::vector<Record>& rs) {
  std::string out;
  for (const Record& r : rs) wire::encode_record(out, r);
  return out;
}

// ---- Wire codec ---------------------------------------------------------------

TEST(WireCodec, RoundTripsThroughByteAtATimeFeeding) {
  Record ev = internal_rec(1);
  ev.writes.push_back({0, -42});
  ev.writes.push_back({1, 1});
  ev.label = "checkpoint";
  const std::string bytes = enc({procs_rec(3), var_rec("x"), ev, end_rec()});

  wire::Decoder dec;
  std::vector<Record> got;
  for (char b : bytes) {
    dec.feed(std::string_view(&b, 1));
    Record r;
    while (dec.next(&r) == wire::Decoder::Status::kRecord) got.push_back(r);
  }
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].kind, Record::Kind::kProcs);
  EXPECT_EQ(got[0].nprocs, 3);
  EXPECT_EQ(got[1].name, "x");
  EXPECT_EQ(got[2].proc, 1);
  ASSERT_EQ(got[2].writes.size(), 2u);
  EXPECT_EQ(got[2].writes[0].var, 0u);
  EXPECT_EQ(got[2].writes[0].value, -42);
  EXPECT_EQ(got[2].label, "checkpoint");
  EXPECT_EQ(got[3].kind, Record::Kind::kEnd);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireCodec, OversizedLengthPrefixIsAStickyError) {
  wire::Decoder dec;
  dec.feed(std::string("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f", 10));
  Record r;
  EXPECT_EQ(dec.next(&r), wire::Decoder::Status::kError);
  EXPECT_FALSE(dec.error().empty());
  dec.feed("more");
  EXPECT_EQ(dec.next(&r), wire::Decoder::Status::kError);  // sticky
}

TEST(WireCodec, UnknownRecordKindIsAnError) {
  std::string bytes;
  wire::put_varint(bytes, 1);
  bytes.push_back('\x09');  // kind 9 does not exist
  wire::Decoder dec;
  dec.feed(bytes);
  Record r;
  EXPECT_EQ(dec.next(&r), wire::Decoder::Status::kError);
}

// ---- Session ------------------------------------------------------------------

SessionConfig two_proc_cfg(std::int64_t gc_interval = 0) {
  SessionConfig cfg;
  cfg.num_procs = 2;
  cfg.gc_interval_events = gc_interval;
  return cfg;
}

TEST(ServeSession, StreamsEventsAndFiresWatches) {
  Session s(1, two_proc_cfg());
  const VarId x = s.monitor().var("x");
  WatchId w = s.monitor().watch_possibly(
      make_conjunctive({var_cmp(0, "x", Cmp::kEq, 7)}));
  (void)x;

  Record ev = internal_rec(0);
  ev.writes.push_back({0, 7});
  s.ingest(enc({procs_rec(2), var_rec("x"), init_rec(0, 0, 1), ev,
                internal_rec(1), end_rec()}));
  ASSERT_EQ(s.state(), SessionState::kFinished) << s.error();
  auto fires = s.poll();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].watch, w);
  EXPECT_TRUE(fires[0].holds);
  auto st = s.stats();
  EXPECT_EQ(st.records, 6);
  EXPECT_EQ(st.events, 2);
  EXPECT_EQ(st.fires, 1);
}

TEST(ServeSession, WatchQueryRoutesOptimizedQueriesToWatchKinds) {
  Session s(1, two_proc_cfg());
  s.monitor().var("x");
  auto parse = [](const char* text) {
    auto r = ctl::parse_query(text);
    EXPECT_TRUE(r.ok) << text << ": " << r.error;
    return r.query;
  };
  const WatchId ef = s.watch_query(parse("EF(x@P0 == 7)"));
  ASSERT_GE(ef, 0);
  const WatchId eu = s.watch_query(parse("E[x@P0 >= 0 U x@P0 == 7]"));
  ASSERT_GE(eu, 0);
  EXPECT_EQ(s.watch_query(parse("x@P0 >= 0")), -1)
      << "non-temporal queries have no watch kind";

  Record ev = internal_rec(0);
  ev.writes.push_back({0, 7});
  s.ingest(enc({procs_rec(2), var_rec("x"), init_rec(0, 0, 1), ev,
                internal_rec(1), end_rec()}));
  ASSERT_EQ(s.state(), SessionState::kFinished) << s.error();
  const auto fires = s.poll();
  ASSERT_EQ(fires.size(), 2u);
  for (const auto& f : fires) EXPECT_TRUE(f.holds);
}

TEST(ServeSession, GcKeepsResidencyBounded) {
  Session s(1, two_proc_cfg(/*gc_interval=*/32));
  std::string head = enc({procs_rec(2)});
  s.ingest(head);
  std::int64_t max_resident = 0;
  for (std::uint64_t round = 0; round < 400; ++round) {
    s.ingest(enc({send_rec(0, 1, round), recv_rec(1, round)}));
    max_resident = std::max(max_resident, s.stats().resident_events);
  }
  s.ingest(enc({end_rec()}));
  ASSERT_EQ(s.state(), SessionState::kFinished) << s.error();
  const auto st = s.stats();
  EXPECT_EQ(st.events, 800);
  EXPECT_GT(st.gc_rounds, 0);
  EXPECT_GT(st.reclaimed_events, 700);
  EXPECT_LT(max_resident, 128);
}

TEST(ServeSession, MalformedStreamFailsWithTypedErrorNotCrash) {
  struct Case {
    std::vector<Record> records;
    const char* needle;  // must appear in the session error
  };
  const Case cases[] = {
      {{procs_rec(3)}, "process count"},
      {{procs_rec(2), recv_rec(0, 9)}, "unsent"},
      {{procs_rec(2), send_rec(0, 1, 5), send_rec(0, 1, 5)}, "duplicate"},
      {{procs_rec(2), send_rec(0, 0, 1)}, "self-message"},
      {{procs_rec(2), internal_rec(7)}, "out of range"},
      {{procs_rec(2), init_rec(0, 3, 1)}, "unregistered"},
      {{procs_rec(2), var_rec("x"), internal_rec(0), init_rec(0, 0, 1)},
       "precede"},
      {{procs_rec(2), end_rec(), internal_rec(0)}, "after end"},
  };
  for (const Case& c : cases) {
    Session s(1, two_proc_cfg());
    s.ingest(enc(c.records));
    EXPECT_EQ(s.state(), SessionState::kFailed);
    EXPECT_NE(s.error().find(c.needle), std::string::npos) << s.error();
    // Failed sessions ignore further input instead of asserting.
    EXPECT_EQ(s.ingest(enc({internal_rec(0)})), 0u);
  }
}

TEST(ServeSession, MsgIdReuseAfterDeliveryIsAFreshMessage) {
  Session s(1, two_proc_cfg());
  s.ingest(enc({procs_rec(2), send_rec(0, 1, 5), recv_rec(1, 5),
                send_rec(1, 0, 5), recv_rec(0, 5), end_rec()}));
  EXPECT_EQ(s.state(), SessionState::kFinished) << s.error();
  EXPECT_EQ(s.stats().events, 4);
}

TEST(ServeSession, TruncatedStreamStaysOpenAcrossChunks) {
  Session s(1, two_proc_cfg());
  const std::string bytes = enc({procs_rec(2), internal_rec(0), end_rec()});
  // Feed all but the final byte: the last record is incomplete, no error.
  s.ingest(std::string_view(bytes).substr(0, bytes.size() - 1));
  EXPECT_EQ(s.state(), SessionState::kOpen);
  s.ingest(std::string_view(bytes).substr(bytes.size() - 1));
  EXPECT_EQ(s.state(), SessionState::kFinished);
}

// ---- StreamingService ---------------------------------------------------------

TEST(StreamingService, ManySessionsDrainConcurrentlyAndIndependently) {
  StreamingService svc;
  const int kSessions = 16;
  std::vector<SessionId> sids;
  std::vector<WatchId> watches(kSessions, -1);
  for (int k = 0; k < kSessions; ++k) {
    sids.push_back(svc.open(two_proc_cfg(/*gc_interval=*/64),
                            [&, k](OnlineMonitor& m) {
                              m.var("x");
                              watches[static_cast<std::size_t>(k)] =
                                  m.watch_stable(make_stable(
                                      [](const Computation&, const Cut& g) {
                                        return g.total() >= 100;
                                      },
                                      "progress"));
                            }));
  }

  // Build each session's whole stream, then post it in 7-byte chunks so
  // records are split at arbitrary boundaries.
  for (int k = 0; k < kSessions; ++k) {
    std::vector<Record> rs{procs_rec(2), var_rec("x")};
    for (std::uint64_t round = 0; round < 60; ++round) {
      rs.push_back(send_rec(0, 1, round));
      rs.push_back(recv_rec(1, round));
    }
    rs.push_back(end_rec());
    const std::string bytes = enc(rs);
    for (std::size_t off = 0; off < bytes.size(); off += 7)
      ASSERT_TRUE(svc.post(sids[static_cast<std::size_t>(k)],
                           bytes.substr(off, 7)));
  }
  svc.drain();

  EXPECT_EQ(svc.num_sessions(), static_cast<std::size_t>(kSessions));
  for (int k = 0; k < kSessions; ++k) {
    const SessionId sid = sids[static_cast<std::size_t>(k)];
    ASSERT_EQ(svc.state(sid), SessionState::kFinished) << svc.error(sid);
    const auto st = svc.stats(sid);
    EXPECT_EQ(st.events, 120);
    EXPECT_GT(st.reclaimed_events, 0);
    auto fires = svc.poll(sid);
    ASSERT_EQ(fires.size(), 1u);
    EXPECT_EQ(fires[0].watch, watches[static_cast<std::size_t>(k)]);
  }
  for (SessionId sid : sids) EXPECT_TRUE(svc.close(sid));
  EXPECT_EQ(svc.num_sessions(), 0u);
}

TEST(StreamingService, OneMalformedStreamFailsOnlyItsSession) {
  StreamingService svc;
  const SessionId good1 = svc.open(two_proc_cfg());
  const SessionId bad = svc.open(two_proc_cfg());
  const SessionId good2 = svc.open(two_proc_cfg());

  for (SessionId sid : {good1, good2})
    svc.post(sid, enc({procs_rec(2), internal_rec(0), internal_rec(1),
                       end_rec()}));
  svc.post(bad, enc({procs_rec(2), recv_rec(0, 3)}));
  svc.drain();

  EXPECT_EQ(svc.state(good1), SessionState::kFinished);
  EXPECT_EQ(svc.state(good2), SessionState::kFinished);
  EXPECT_EQ(svc.state(bad), SessionState::kFailed);
  EXPECT_FALSE(svc.error(bad).empty());
  // Posting to the failed session is harmless.
  EXPECT_TRUE(svc.post(bad, enc({internal_rec(0)})));
  svc.drain();
  EXPECT_EQ(svc.state(bad), SessionState::kFailed);
}

TEST(StreamingService, UndecodableBytesFailTheSessionCleanly) {
  StreamingService svc;
  const SessionId sid = svc.open(two_proc_cfg());
  svc.post(sid, std::string("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f", 10));
  svc.drain();
  EXPECT_EQ(svc.state(sid), SessionState::kFailed);
  EXPECT_NE(svc.error(sid).find("decode"), std::string::npos)
      << svc.error(sid);
}

TEST(StreamingService, RecordPostAndFinishConvenience) {
  StreamingService svc;
  const SessionId sid = svc.open(two_proc_cfg());
  EXPECT_TRUE(svc.post(sid, procs_rec(2)));
  EXPECT_TRUE(svc.post(sid, internal_rec(0)));
  EXPECT_TRUE(svc.finish(sid));
  svc.drain();
  EXPECT_EQ(svc.state(sid), SessionState::kFinished) << svc.error(sid);
  EXPECT_EQ(svc.stats(sid).events, 1);
  // Unknown sessions are reported, not asserted on.
  EXPECT_FALSE(svc.post(SessionId{999}, internal_rec(0)));
  EXPECT_FALSE(svc.close(SessionId{999}));
}

TEST(StreamingService, MetricsLandInTheTracerRegistry) {
  Tracer tracer;
  serve::ServiceOptions opt;
  opt.trace = &tracer;
  StreamingService svc(opt);
  const SessionId sid = svc.open(two_proc_cfg(/*gc_interval=*/8));
  std::vector<Record> rs{procs_rec(2)};
  for (std::uint64_t round = 0; round < 40; ++round) {
    rs.push_back(send_rec(0, 1, round));
    rs.push_back(recv_rec(1, round));
  }
  rs.push_back(end_rec());
  svc.post(sid, enc(rs));
  svc.drain();
  ASSERT_EQ(svc.state(sid), SessionState::kFinished) << svc.error(sid);

  const MetricsSnapshot snap = tracer.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.records"), 82u);
  EXPECT_EQ(snap.counters.at("serve.events"), 80u);
  EXPECT_EQ(snap.counters.at("serve.sessions_opened"), 1u);
  EXPECT_GT(snap.counters.at("serve.gc.rounds"), 0u);
  EXPECT_GT(snap.counters.at("serve.gc.reclaimed_events"), 0u);
  EXPECT_EQ(snap.gauges.at("serve.open_sessions"), 1);
  EXPECT_GT(snap.histograms.at("serve.ingest.ns").count, 0u);
  // Ingest work is span-traced.
  bool saw_ingest = false;
  for (const Span& sp : tracer.spans()) saw_ingest |= sp.name == "serve.ingest";
  EXPECT_TRUE(saw_ingest);

  svc.close(sid);
  EXPECT_EQ(tracer.metrics().snapshot().gauges.at("serve.open_sessions"), 0);
}

TEST(StreamingService, ResidentEventsAggregatesLiveSessions) {
  StreamingService svc;
  const SessionId a = svc.open(two_proc_cfg());
  const SessionId b = svc.open(two_proc_cfg());
  svc.post(a, enc({procs_rec(2), internal_rec(0), internal_rec(0)}));
  svc.post(b, enc({procs_rec(2), internal_rec(1)}));
  svc.drain();
  EXPECT_EQ(svc.resident_events(), 3);
  svc.close(a);
  EXPECT_EQ(svc.resident_events(), 1);
}

}  // namespace
}  // namespace hbct
