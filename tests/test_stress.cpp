// Heavier property stress: larger random computations (lattices in the
// thousands of cuts), every operator, mixed predicate shapes — a final
// safety net over the per-algorithm suites. Runtime-bounded by lattice caps.
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "detect/dispatch.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/relational.h"
#include "util/rng.h"

namespace hbct {
namespace {

class Stress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Stress, AllOperatorsOnLargerComputations) {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 6;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.seed = GetParam() * 1337;
  Computation c = generate_random(opt);

  auto lat = Lattice::try_build(c, 60000);
  if (!lat) GTEST_SKIP() << "lattice too large for the oracle at this seed";
  LatticeChecker chk(std::move(*lat));

  Rng rng(GetParam() * 31337);
  auto rand_local = [&] {
    return var_cmp(static_cast<ProcId>(rng.next_below(4)),
                   rng.next_bool() ? "v0" : "v1",
                   static_cast<Cmp>(rng.next_below(6)), rng.next_in(0, 5));
  };

  for (int round = 0; round < 3; ++round) {
    std::vector<PredicatePtr> preds;
    preds.push_back(make_conjunctive({rand_local(), rand_local(),
                                      rand_local()}));
    preds.push_back(make_disjunctive({rand_local(), rand_local()}));
    preds.push_back(make_and(PredicatePtr(make_conjunctive({rand_local()})),
                             channel_bound_le(0, 1, 1)));
    preds.push_back(make_or(PredicatePtr(make_conjunctive(
                                {rand_local(), rand_local()})),
                            PredicatePtr(make_conjunctive({rand_local()}))));
    preds.push_back(make_terminated());

    for (const auto& p : preds) {
      for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
        DetectResult fast = detect(c, op, p);
        DetectResult slow = chk.detect(op, *p);
        ASSERT_EQ(fast.holds(), slow.holds())
            << to_string(op) << " via " << fast.algorithm << " on "
            << p->describe();
      }
    }

    auto up = make_conjunctive({rand_local(), rand_local()});
    PredicatePtr uq = make_and(PredicatePtr(make_conjunctive({rand_local()})),
                               all_channels_empty());
    ASSERT_EQ(detect(c, Op::kEU, up, uq).holds(),
              chk.detect(Op::kEU, *up, uq.get()).holds());

    auto ap = make_disjunctive({rand_local(), rand_local()});
    auto aq = make_disjunctive({rand_local(), rand_local()});
    ASSERT_EQ(detect(c, Op::kAU, ap, aq).holds(),
              chk.detect(Op::kAU, *ap, aq.get()).holds());
  }
}

TEST_P(Stress, ChannelHeavyComputations) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 8;
  opt.p_send = 0.5;
  opt.p_recv = 0.4;
  opt.seed = GetParam() * 271;
  Computation c = generate_random(opt);

  auto lat = Lattice::try_build(c, 60000);
  if (!lat) GTEST_SKIP();
  LatticeChecker chk(std::move(*lat));

  for (ProcId i = 0; i < 3; ++i)
    for (ProcId j = 0; j < 3; ++j) {
      if (i == j) continue;
      for (std::int32_t k : {0, 1, 2}) {
        for (auto p : {channel_bound_le(i, j, k), channel_bound_ge(i, j, k)}) {
          for (Op op : {Op::kEF, Op::kEG, Op::kAG}) {
            ASSERT_EQ(detect(c, op, p).holds(), chk.detect(op, *p).holds())
                << to_string(op) << " " << p->describe();
          }
        }
      }
    }
  PredicatePtr empty = all_channels_empty();
  for (Op op : {Op::kEF, Op::kEG, Op::kAG})
    ASSERT_EQ(detect(c, op, empty).holds(), chk.detect(op, *empty).holds());
}

TEST_P(Stress, ManyProcessesFewEvents) {
  GenOptions opt;
  opt.num_procs = 7;
  opt.events_per_proc = 2;
  opt.p_send = 0.4;
  opt.seed = GetParam() * 733;
  Computation c = generate_random(opt);
  auto lat = Lattice::try_build(c, 60000);
  if (!lat) GTEST_SKIP();
  LatticeChecker chk(std::move(*lat));

  Rng rng(GetParam());
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < 7; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, rng.next_in(2, 8)));
  auto conj = make_conjunctive(ls);
  auto disj = make_disjunctive(std::move(ls));
  for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
    ASSERT_EQ(detect(c, op, conj).holds(), chk.detect(op, *conj).holds())
        << to_string(op);
    ASSERT_EQ(detect(c, op, disj).holds(), chk.detect(op, *disj).holds())
        << to_string(op);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Stress, ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace hbct
