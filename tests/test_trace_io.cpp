// Tests for the text trace format: round-trips and error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "poset/generate.h"
#include "poset/trace_io.h"

namespace hbct {
namespace {

TEST(TraceIo, RoundTripRandomComputations) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GenOptions opt;
    opt.num_procs = 3 + static_cast<std::int32_t>(seed % 3);
    opt.events_per_proc = 6;
    opt.seed = seed;
    Computation a = generate_random(opt);
    const std::string text = trace_to_string(a);

    TraceParseResult parsed = trace_from_string(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const Computation& b = parsed.computation;
    b.validate();

    ASSERT_EQ(a.num_procs(), b.num_procs());
    ASSERT_EQ(a.total_events(), b.total_events());
    ASSERT_EQ(a.num_messages(), b.num_messages());
    // Same events, clocks, and variable timelines.
    for (ProcId i = 0; i < a.num_procs(); ++i) {
      ASSERT_EQ(a.num_events(i), b.num_events(i));
      for (EventIndex k = 1; k <= a.num_events(i); ++k) {
        EXPECT_EQ(a.vclock(i, k), b.vclock(i, k));
        EXPECT_EQ(a.event(i, k).kind, b.event(i, k).kind);
      }
      for (VarId v = 0; v < a.num_vars(); ++v)
        for (EventIndex k = 0; k <= a.num_events(i); ++k)
          EXPECT_EQ(a.value_at(i, v, k),
                    b.value_at(i, *b.var_id(a.var_name(v)), k));
    }
    // Idempotence: serializing the parse is byte-identical.
    EXPECT_EQ(trace_to_string(b), text);
  }
}

TEST(TraceIo, PreservesLabelsAndInitials) {
  const std::string text =
      "hbct-trace v1\n"
      "procs 2\n"
      "var x\n"
      "init 0 x 5\n"
      "ev 0 internal label=boot x=7\n"
      "ev 0 send 1 0\n"
      "ev 1 recv 0 x=9\n"
      "end\n";
  auto r = trace_from_string(text);
  ASSERT_TRUE(r.ok) << r.error;
  const Computation& c = r.computation;
  EXPECT_EQ(c.value_at(0, 0, 0), 5);
  EXPECT_EQ(c.value_at(0, 0, 1), 7);
  EXPECT_EQ(c.value_at(1, 0, 1), 9);
  ASSERT_TRUE(c.find_label("boot").has_value());
  EXPECT_EQ(trace_to_string(c), text);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "hbct-trace v1\n"
      "# a comment\n"
      "procs 1\n"
      "\n"
      "ev 0 internal   # trailing comment\n"
      "end\n";
  auto r = trace_from_string(text);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.computation.total_events(), 1);
}

struct BadTraceCase {
  const char* name;
  const char* text;
  const char* expect_substr;
};

class TraceIoErrors : public ::testing::TestWithParam<BadTraceCase> {};

TEST_P(TraceIoErrors, ReportsError) {
  auto r = trace_from_string(GetParam().text);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find(GetParam().expect_substr), std::string::npos)
      << "actual error: " << r.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TraceIoErrors,
    ::testing::Values(
        BadTraceCase{"no_header", "procs 2\nend\n", "header"},
        BadTraceCase{"bad_procs", "hbct-trace v1\nprocs x\nend\n",
                     "process count"},
        BadTraceCase{"missing_end", "hbct-trace v1\nprocs 1\n", "end"},
        BadTraceCase{"recv_before_send",
                     "hbct-trace v1\nprocs 2\nev 1 recv 7\nend\n",
                     "before matching send"},
        BadTraceCase{"double_recv",
                     "hbct-trace v1\nprocs 2\nev 0 send 1 3\nev 1 recv 3\n"
                     "ev 1 recv 3\nend\n",
                     "received twice"},
        BadTraceCase{"wrong_dst",
                     "hbct-trace v1\nprocs 3\nev 0 send 1 3\nev 2 recv 3\n"
                     "end\n",
                     "wrong process"},
        BadTraceCase{"self_send",
                     "hbct-trace v1\nprocs 2\nev 0 send 0 1\nend\n",
                     "send"},
        BadTraceCase{"bad_proc_index",
                     "hbct-trace v1\nprocs 2\nev 5 internal\nend\n", "ev"},
        BadTraceCase{"dup_msg_id",
                     "hbct-trace v1\nprocs 3\nev 0 send 1 3\nev 0 send 2 3\n"
                     "end\n",
                     "duplicate"},
        BadTraceCase{"garbage_record",
                     "hbct-trace v1\nprocs 1\nfoo bar\nend\n", "unknown"},
        BadTraceCase{"bad_assignment",
                     "hbct-trace v1\nprocs 1\nev 0 internal x=abc\nend\n",
                     "bad integer"}),
    [](const ::testing::TestParamInfo<BadTraceCase>& info) {
      return info.param.name;
    });

// ---- Binary form: text <-> binary round-trip properties ------------------------

TEST(TraceIoBinary, RoundTripRandomComputations) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GenOptions opt;
    opt.num_procs = 3 + static_cast<std::int32_t>(seed % 3);
    opt.events_per_proc = 6;
    opt.seed = seed;
    Computation a = generate_random(opt);

    const std::string bytes = trace_to_binary_string(a);
    TraceParseResult parsed = trace_from_binary_string(bytes);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    parsed.computation.validate();
    // The canonical text form is the equality oracle for both directions:
    // binary decode must land on the same computation the text form names.
    EXPECT_EQ(trace_to_string(parsed.computation), trace_to_string(a));
    // And the binary print of the parse is byte-identical (idempotence).
    EXPECT_EQ(trace_to_binary_string(parsed.computation), bytes);
  }
}

TEST(TraceIoBinary, TextToBinaryAndBackPreservesEverything) {
  const std::string text =
      "hbct-trace v1\n"
      "procs 2\n"
      "var x\n"
      "init 0 x 5\n"
      "ev 0 internal label=boot x=7\n"
      "ev 0 send 1 0\n"
      "ev 1 recv 0 x=9\n"
      "end\n";
  auto from_text = trace_from_string(text);
  ASSERT_TRUE(from_text.ok) << from_text.error;

  const std::string bytes = trace_to_binary_string(from_text.computation);
  auto from_binary = trace_from_binary_string(bytes);
  ASSERT_TRUE(from_binary.ok) << from_binary.error;

  // Full circle: text -> computation -> binary -> computation -> text.
  EXPECT_EQ(trace_to_string(from_binary.computation), text);
  const Computation& c = from_binary.computation;
  EXPECT_EQ(c.value_at(0, 0, 0), 5);
  EXPECT_EQ(c.value_at(0, 0, 1), 7);
  EXPECT_EQ(c.value_at(1, 0, 1), 9);
  ASSERT_TRUE(c.find_label("boot").has_value());
}

TEST(TraceIoBinary, StreamInterfaceMatchesStringInterface) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 5;
  opt.seed = 7;
  const Computation a = generate_random(opt);

  std::ostringstream os;
  write_trace_binary(os, a);
  EXPECT_EQ(os.str(), trace_to_binary_string(a));

  std::istringstream is(os.str());
  TraceParseResult r = read_trace_binary(is);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(trace_to_string(r.computation), trace_to_string(a));
}

TEST(TraceIoBinary, RejectsTextMagicAndViceVersa) {
  GenOptions opt;
  opt.num_procs = 2;
  opt.events_per_proc = 3;
  opt.seed = 3;
  const Computation a = generate_random(opt);
  EXPECT_FALSE(trace_from_binary_string(trace_to_string(a)).ok);
  EXPECT_FALSE(trace_from_string(trace_to_binary_string(a)).ok);
}

}  // namespace
}  // namespace hbct
