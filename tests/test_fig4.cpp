// Reproduction of Fig. 4: the E[p U q] example computation.
//
// Quoted facts from the paper's text (the figure image itself is not in the
// source): three processes; p = "z@P3 < 6 && x@P1 < 4" (conjunctive);
// q = "channels empty && x@P1 > 1" (linear); the witness sequence
// ∅, {f1}, {e1,f1}, {e1,f2,f1}, {e1,f2,f1,g1}; I_q = {e1,f2,f1,g1}; and
// "out of a possible 7 paths which start from the initial cut and satisfy
// the predicate ... the ones that lead to I_q ... there are only 2".
//
// Our reconstruction (found by exhausting the small space of variable
// placements consistent with the quoted facts; see DESIGN.md):
//   P0 ("P1"): e1 = send->f2, x := 2;  e2 internal, x := 3.   x initially 1.
//   P1 ("P2"): f1 = send->g1;          f2 = receive(e1).
//   P2 ("P3"): g1 = receive(f1), z := 6.                      z initially 3.
// This reproduces all quoted facts exactly, including the 7/2 path counts.
#include <gtest/gtest.h>

#include "ctl/compile.h"
#include "detect/brute_force.h"
#include "detect/ef_linear.h"
#include "detect/until.h"
#include "lattice/path_count.h"
#include "poset/builder.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"

namespace hbct {
namespace {

Computation fig4_computation() {
  ComputationBuilder b(3);
  VarId x = b.var("x"), z = b.var("z");
  b.set_initial(0, x, 1);
  b.set_initial(2, z, 3);
  MsgId m1 = b.send(0, 1);
  b.label(0, "e1").write(0, x, 2);
  b.internal(0);
  b.label(0, "e2").write(0, x, 3);
  MsgId m2 = b.send(1, 2);
  b.label(1, "f1");
  b.receive(1, m1);
  b.label(1, "f2");
  b.receive(2, m2);
  b.label(2, "g1").write(2, z, 6);
  return std::move(b).build();
}

ConjunctivePredicatePtr fig4_p() {
  return make_conjunctive(
      {var_cmp(2, "z", Cmp::kLt, 6), var_cmp(0, "x", Cmp::kLt, 4)});
}

PredicatePtr fig4_q() {
  return make_and(all_channels_empty(),
                  PredicatePtr(var_cmp(0, "x", Cmp::kGt, 1)));
}

TEST(Fig4, PredicateClassesMatchThePaper) {
  Computation c = fig4_computation();
  c.validate();
  auto p = fig4_p();
  auto q = fig4_q();
  // "the first part of the predicate, p, is a conjunctive predicate and the
  // second part, q, is a linear predicate".
  EXPECT_NE(effective_classes(*p, c) & kClassConjunctive, 0u);
  EXPECT_NE(effective_classes(*q, c) & kClassLinear, 0u);
}

TEST(Fig4, IqIsTheQuotedCut) {
  Computation c = fig4_computation();
  DetectStats st;
  auto iq = least_satisfying_cut(c, *fig4_q(), st);
  ASSERT_TRUE(iq.has_value());
  EXPECT_EQ(*iq, Cut({1, 2, 1}));  // {e1, f1, f2, g1}
}

TEST(Fig4, QuotedWitnessSequenceIsValid) {
  Computation c = fig4_computation();
  auto p = fig4_p();
  auto q = fig4_q();
  // ∅, {f1}, {e1,f1}, {e1,f2,f1}, {e1,f2,f1,g1}.
  const std::vector<Cut> path = {Cut({0, 0, 0}), Cut({0, 1, 0}),
                                 Cut({1, 1, 0}), Cut({1, 2, 0}),
                                 Cut({1, 2, 1})};
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(c.is_consistent(path[i]));
    EXPECT_TRUE(p->eval(c, path[i])) << i;
    EXPECT_EQ(path[i + 1].total(), path[i].total() + 1);
  }
  EXPECT_TRUE(q->eval(c, path.back()));
}

TEST(Fig4, SevenWitnessesTwoThroughIq) {
  Computation c = fig4_computation();
  auto p = fig4_p();
  auto q = fig4_q();
  Lattice lat = Lattice::build(c);
  const NodeId iq = lat.node_of(Cut({1, 2, 1}));
  ASSERT_NE(iq, kNoNode);
  BigUint at_iq;
  BigUint total = count_eu_witnesses(
      lat, [&](NodeId v) { return p->eval(c, lat.cut(v)); },
      [&](NodeId v) { return q->eval(c, lat.cut(v)); }, iq, &at_iq);
  EXPECT_EQ(total.to_string(), "7");
  EXPECT_EQ(at_iq.to_string(), "2");
}

TEST(Fig4, A3DetectsEuWithWitnessEndingAtIq) {
  Computation c = fig4_computation();
  DetectResult r = detect_eu(c, *fig4_p(), *fig4_q());
  EXPECT_TRUE(r.holds());
  ASSERT_TRUE(r.witness_cut.has_value());
  EXPECT_EQ(*r.witness_cut, Cut({1, 2, 1}));
  // Witness path checks out: p before, q at the end.
  ASSERT_EQ(r.witness_path.size(), 5u);
  EXPECT_EQ(r.witness_path.front(), c.initial_cut());
  EXPECT_EQ(r.witness_path.back(), Cut({1, 2, 1}));
}

TEST(Fig4, BruteForceAgrees) {
  Computation c = fig4_computation();
  auto p = fig4_p();
  auto q = fig4_q();
  LatticeChecker chk(c);
  EXPECT_TRUE(chk.detect(Op::kEU, *p, q.get()).holds());
  EXPECT_EQ(detect_eu(c, *p, *q).holds(), true);
}

TEST(Fig4, CtlTextualFormOfTheExample) {
  Computation c = fig4_computation();
  auto r = ctl::evaluate_query(
      c, "E[ z@P2 < 6 && x@P0 < 4 U channels_empty && x@P0 > 1 ]");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.result.holds());
  EXPECT_EQ(r.result.algorithm, "A3-eu");
}

TEST(Fig4, MutualExclusionStyleAuExample) {
  // The paper's Section 1 example: A[try U critical]. Build a tiny
  // computation where P0 tries then enters.
  ComputationBuilder b(2);
  VarId t = b.var("try"), cs = b.var("critical");
  b.internal(0);
  b.write(0, t, 1);
  b.internal(0);
  b.write(0, t, 0).write(0, cs, 1);
  b.internal(1);
  Computation c = std::move(b).build();
  auto r = ctl::evaluate_query(
      c, "A[ try@P0 == 1 || critical@P0 == 0 U critical@P0 == 1 ]");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.result.holds());
}

}  // namespace
}  // namespace hbct
