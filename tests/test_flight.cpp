// Production-telemetry tier: the flight recorder's lock-free ring (wrap,
// concurrent writers, dump-on-anomaly with the trigger marked), the
// Prometheus exposition round trip, SLO breach edge semantics, the metrics
// snapshot-vs-registration race, and the JSON-escape hardening that keeps a
// hostile session id from ever rendering a dump unloadable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "detect/dispatch.h"
#include "obs/expose.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "poset/generate.h"
#include "poset/trace_io.h"
#include "predicate/conjunctive.h"
#include "predicate/local.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hbct {
namespace {

// ---- Flight recorder ring --------------------------------------------------

TEST(FlightRing, WrapAroundKeepsNewestRecords) {
  FlightRecorder::Config cfg;
  cfg.ring_capacity = 16;
  FlightRecorder rec(cfg);
  const std::uint16_t name = rec.intern("wrap.test", "i");
  // Single thread => single shard: 1000 writes through a 16-slot ring.
  for (int i = 0; i < 1000; ++i) rec.instant(name, i);

  const auto records = rec.snapshot();
  ASSERT_LE(records.size(), 16u);
  ASSERT_GE(records.size(), 1u);
  // The survivors are exactly the newest writes, oldest first.
  std::int64_t prev = -1;
  for (const auto& r : records) {
    EXPECT_EQ(rec.name_of(r.name), "wrap.test");
    EXPECT_GT(r.a0, prev);
    prev = r.a0;
  }
  EXPECT_EQ(records.back().a0, 999);
  EXPECT_EQ(rec.stats().recorded, 1000u);
}

TEST(FlightRing, ConcurrentWritersNeverTearNames) {
  FlightRecorder::Config cfg;
  cfg.ring_capacity = 64;
  FlightRecorder rec(cfg);
  const std::uint16_t name = rec.intern("conc.test", "thread", "i");

  constexpr int kThreads = 8;
  constexpr int kWrites = 5'000;
  ThreadPool pool(kThreads);
  std::atomic<int> dumps{0};
  pool.parallel_for(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kWrites; ++i) {
      rec.instant(name, static_cast<std::int64_t>(t), i);
      // Snapshot concurrently with the writers: readers must only ever see
      // whole records (the per-slot seqlock skips torn ones).
      if (i % 1024 == 0) {
        for (const auto& r : rec.snapshot()) {
          ASSERT_EQ(rec.name_of(r.name), "conc.test");
          ASSERT_GE(r.a0, 0);
          ASSERT_LT(r.a0, kThreads);
        }
        dumps.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(rec.stats().recorded,
            static_cast<std::uint64_t>(kThreads) * kWrites);
  EXPECT_GT(dumps.load(), 0);
}

TEST(FlightRing, DisabledRecorderWritesNothing) {
  FlightRecorder rec;
  const std::uint16_t name = rec.intern("off.test");
  rec.set_enabled(false);
  rec.instant(name);
  {
    FlightScope scope(rec, name);
  }
  EXPECT_EQ(rec.stats().recorded, 0u);
  rec.set_enabled(true);
  rec.instant(name);
  EXPECT_EQ(rec.stats().recorded, 1u);
}

// ---- Dump on anomaly -------------------------------------------------------

TEST(FlightDump, AnomalyInvokesSinkWithLoadableChromeTrace) {
  FlightRecorder rec;
  const std::uint16_t span = rec.intern("work.span", "step");
  const std::uint16_t anom = rec.intern("test.anomaly", "code");
  const std::uint64_t t0 = rec.now_ns();
  rec.span(span, t0, t0 + 1'000, 1);
  rec.span(span, t0 + 2'000, t0 + 3'000, 2);

  std::string dumped, dumped_name;
  rec.set_dump_sink([&](const std::string& json, std::string_view name) {
    dumped = json;
    dumped_name = std::string(name);
  });
  rec.anomaly(anom, 42);

  ASSERT_FALSE(dumped.empty());
  EXPECT_EQ(dumped_name, "test.anomaly");
  std::string err;
  EXPECT_TRUE(json_validate(dumped, &err)) << err;
  // The triggering anomaly is marked so it is findable in the trace viewer.
  EXPECT_NE(dumped.find("\"trigger\""), std::string::npos);
  EXPECT_NE(dumped.find("test.anomaly"), std::string::npos);
  EXPECT_NE(dumped.find("work.span"), std::string::npos);
  EXPECT_EQ(rec.stats().dumps, 1u);
}

TEST(FlightDump, MinDumpGapRateLimitsAutomaticDumps) {
  FlightRecorder::Config cfg;
  cfg.min_dump_gap_ns = ~std::uint64_t{0} / 2;  // effectively: once
  FlightRecorder rec(cfg);
  const std::uint16_t anom = rec.intern("storm.anomaly");
  int sinks = 0;
  rec.set_dump_sink([&](const std::string&, std::string_view) { ++sinks; });
  for (int i = 0; i < 10; ++i) rec.anomaly(anom, i);
  EXPECT_EQ(sinks, 1);
  EXPECT_EQ(rec.stats().anomalies, 10u);
  // Explicit dumps are never rate-limited.
  const std::string dump = rec.dump_chrome();
  EXPECT_TRUE(json_validate(dump));
}

TEST(FlightDump, RuntimeGapSetterControlsAutomaticDumps) {
  // The default gap is nonzero: a default-constructed recorder (the global
  // instance is one) must not render a dump per anomaly during a storm.
  EXPECT_GT(FlightRecorder::Config{}.min_dump_gap_ns, 0u);

  FlightRecorder rec;  // default Config
  EXPECT_EQ(rec.min_dump_gap(), FlightRecorder::Config{}.min_dump_gap_ns);
  const std::uint16_t anom = rec.intern("gap.anomaly");
  int sinks = 0;
  rec.set_dump_sink([&](const std::string&, std::string_view) { ++sinks; });
  // A burst under the default gap: only the first anomaly dumps.
  for (int i = 0; i < 5; ++i) rec.anomaly(anom, i);
  EXPECT_EQ(sinks, 1);
  // Operators can retune the armed global recorder at runtime.
  rec.set_min_dump_gap(0);
  EXPECT_EQ(rec.min_dump_gap(), 0u);
  for (int i = 0; i < 3; ++i) rec.anomaly(anom, i);
  EXPECT_EQ(sinks, 4);
  rec.set_min_dump_gap(~std::uint64_t{0} / 2);
  for (int i = 0; i < 3; ++i) rec.anomaly(anom, i);
  EXPECT_EQ(sinks, 4);
  EXPECT_EQ(rec.stats().anomalies, 11u);
}

/// Restores the global recorder's sink (and enabled flag, and dump gap) on
/// scope exit so tests sharing the process-wide recorder cannot leak state.
/// The gap is zeroed while armed: the default 1s storm floor would swallow
/// the dumps of every injection test after the first in a fast test run.
class GlobalSinkGuard {
 public:
  explicit GlobalSinkGuard(FlightRecorder::DumpSink sink) {
    FlightRecorder::global().set_dump_sink(std::move(sink));
    FlightRecorder::global().set_min_dump_gap(0);
  }
  ~GlobalSinkGuard() {
    FlightRecorder::global().set_dump_sink(nullptr);
    FlightRecorder::global().set_enabled(true);
    FlightRecorder::global().set_min_dump_gap(
        FlightRecorder::Config{}.min_dump_gap_ns);
  }
};

/// When CI exports HBCT_FLIGHT_DUMP, the anomaly-injection tests write the
/// dump there so the workflow can upload it as an artifact.
void maybe_write_artifact(const std::string& json) {
  const char* path = std::getenv("HBCT_FLIGHT_DUMP");
  if (path == nullptr || json.empty()) return;
  std::ofstream out(path, std::ios::binary);
  out << json << "\n";
}

TEST(FlightDump, BudgetTripRaisesGlobalAnomaly) {
  std::string dumped, dumped_name;
  GlobalSinkGuard guard([&](const std::string& json, std::string_view name) {
    dumped = json;
    dumped_name = std::string(name);
  });

  GenOptions gopt;
  gopt.num_procs = 3;
  gopt.events_per_proc = 6;
  gopt.num_vars = 1;
  gopt.seed = 7;
  const Computation c = generate_random(gopt);
  DispatchOptions opt;
  opt.budget.max_work = 1;  // trips kStepBudget almost immediately
  const auto r = detect(c, Op::kEF,
                        make_conjunctive({var_cmp(0, "v0", Cmp::kEq, -77),
                                          var_cmp(1, "v0", Cmp::kEq, -77)}),
                        nullptr, opt);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);

  ASSERT_FALSE(dumped.empty()) << "budget trip did not reach the recorder";
  EXPECT_EQ(dumped_name, "budget.trip");
  std::string err;
  EXPECT_TRUE(json_validate(dumped, &err)) << err;
  EXPECT_NE(dumped.find("\"trigger\""), std::string::npos);
  EXPECT_NE(dumped.find("budget.trip"), std::string::npos);
  maybe_write_artifact(dumped);
}

TEST(FlightDump, MalformedWireRecordRaisesSessionAnomaly) {
  std::string dumped, dumped_name;
  GlobalSinkGuard guard([&](const std::string& json, std::string_view name) {
    dumped = json;
    dumped_name = std::string(name);
  });

  serve::ServiceOptions sopt;
  serve::StreamingService svc(sopt);
  serve::SessionConfig cfg;
  cfg.num_procs = 2;
  const auto sid = svc.open(cfg, [](OnlineMonitor&) {});
  // A length-prefixed record whose payload is garbage: the wire decoder
  // rejects it and the session fails — exactly the anomaly class the
  // recorder exists to capture.
  svc.post(sid, std::string("\x06\x63\x63\x63\x63\x63\x63", 7));
  svc.drain();
  EXPECT_EQ(svc.state(sid), serve::SessionState::kFailed);
  EXPECT_FALSE(svc.error(sid).empty());

  ASSERT_FALSE(dumped.empty()) << "session failure did not reach the recorder";
  EXPECT_EQ(dumped_name, "serve.session_fail");
  std::string err;
  EXPECT_TRUE(json_validate(dumped, &err)) << err;
  EXPECT_NE(dumped.find("\"trigger\""), std::string::npos);
}

// ---- Recorder on/off must not change verdicts ------------------------------

TEST(FlightRecorderAB, VerdictsBitIdenticalAcross40Seeds) {
  GlobalSinkGuard guard(nullptr);  // restores enabled=true on exit
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    GenOptions gopt;
    gopt.num_procs = 3;
    gopt.events_per_proc = 5;
    gopt.num_vars = 2;
    gopt.value_lo = 0;
    gopt.value_hi = 4;
    gopt.seed = seed;
    const Computation c = generate_random(gopt);
    Rng rng(seed * 7919 + 1);
    std::vector<LocalPredicatePtr> ls;
    for (int i = 0; i < 2; ++i)
      ls.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)),
                           rng.next_bool() ? "v0" : "v1",
                           static_cast<Cmp>(rng.next_below(6)),
                           rng.next_in(0, 4)));
    const auto p = make_conjunctive(std::move(ls));

    FlightRecorder::global().set_enabled(true);
    const auto on_ef = detect(c, Op::kEF, p);
    const auto on_ag = detect(c, Op::kAG, p);
    FlightRecorder::global().set_enabled(false);
    const auto off_ef = detect(c, Op::kEF, p);
    const auto off_ag = detect(c, Op::kAG, p);
    FlightRecorder::global().set_enabled(true);

    EXPECT_EQ(on_ef.verdict, off_ef.verdict) << "seed " << seed;
    EXPECT_EQ(on_ag.verdict, off_ag.verdict) << "seed " << seed;
    EXPECT_EQ(on_ef.stats.predicate_evals, off_ef.stats.predicate_evals)
        << "seed " << seed;
    EXPECT_EQ(on_ag.stats.predicate_evals, off_ag.stats.predicate_evals)
        << "seed " << seed;
  }
}

// ---- Metrics registry: snapshot vs registration race -----------------------

TEST(MetricsRace, SnapshotConcurrentWithRegistration) {
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 200;
  std::atomic<bool> stop{false};

  // The reader takes a minimum number of snapshots regardless of writer
  // progress, so the loop races with registration whenever the scheduler
  // lets it (and TSan sees the pair on every run).
  std::thread reader([&] {
    for (int i = 0; i < 100 || !stop.load(std::memory_order_acquire); ++i) {
      const MetricsSnapshot snap = reg.snapshot();
      for (const auto& [name, v] : snap.counters) {
        ASSERT_FALSE(name.empty());
        (void)v;
      }
    }
  });

  ThreadPool pool(kWriters);
  pool.parallel_for(kWriters, [&](std::size_t t) {
    for (int i = 0; i < kPerWriter; ++i) {
      // Fresh names force map mutation under the registry mutex while the
      // reader snapshots; the increment after resolution is lock-free.
      Counter& c = reg.counter("race.c" + std::to_string(t) + "." +
                               std::to_string(i));
      c.add(t + 1);
      reg.gauge("race.g" + std::to_string(t)).set(i);
      reg.histogram("race.h" + std::to_string(t)).record(i);
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();

  const MetricsSnapshot snap = reg.snapshot();
  std::uint64_t total = 0;
  for (const auto& [name, v] : snap.counters)
    if (name.rfind("race.c", 0) == 0) total += v;
  std::uint64_t expect = 0;
  for (int t = 0; t < kWriters; ++t)
    expect += static_cast<std::uint64_t>(t + 1) * kPerWriter;
  EXPECT_EQ(total, expect);
}

// ---- Prometheus exposition -------------------------------------------------

TEST(Expose, RenderParseRoundTripIsExact) {
  MetricsRegistry reg;
  reg.counter("detect.cut_steps").add(12345);
  reg.counter(labeled("serve.fires", "class", "conjunctive")).add(7);
  reg.gauge("serve.resident_events").set(-3);
  Histogram& h = reg.histogram("serve.fire_latency.ns");
  for (std::uint64_t v : {0ull, 1ull, 3ull, 100ull, 5'000'000'000ull})
    h.record(v);
  Histogram& hl =
      reg.histogram(labeled("serve.fire_latency.ns", "class", "stable"));
  hl.record(4096);

  const MetricsSnapshot snap = reg.snapshot();
  ExpositionOptions eo;
  eo.timestamp_ns = 123'456'789;
  const std::string text = render_prometheus(snap, eo);

  MetricsSnapshot back;
  std::string err;
  ASSERT_TRUE(parse_prometheus(text, &back, &err)) << err;
  // The parse adds the synthesized timestamp gauge; remove it and the rest
  // must equal the original snapshot exactly — bucket counts included.
  ASSERT_EQ(back.gauges.count("exposition.timestamp_ns"), 1u);
  EXPECT_EQ(back.gauges.at("exposition.timestamp_ns"), 123'456'789);
  back.gauges.erase("exposition.timestamp_ns");
  EXPECT_EQ(back, snap);
}

TEST(Expose, EveryFamilyHasTypeLineAndCountersEndInTotal) {
  MetricsRegistry reg;
  reg.counter("a.b").add(1);
  reg.gauge("c.d").set(2);
  reg.histogram("e.f").record(3);
  const std::string text = render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE hbct_a_b_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hbct_c_d gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hbct_e_f histogram"), std::string::npos);
  EXPECT_NE(text.find("hbct_a_b_total 1"), std::string::npos);
  // Histogram series: cumulative buckets, +Inf bucket, _sum and _count.
  EXPECT_NE(text.find("hbct_e_f_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("hbct_e_f_sum 3"), std::string::npos);
  EXPECT_NE(text.find("hbct_e_f_count 1"), std::string::npos);
}

TEST(Expose, LabelKeysEndingInLeAreNotMistakenForBucketBoundaries) {
  // "sample" and "percentile" both *end* in "le": a substring search for
  // `le="` would read/strip the wrong label and reject the bucket line
  // with a spurious "not a log2 boundary" error.
  MetricsRegistry reg;
  reg.counter(labeled("detect.evals", "percentile", "99")).add(3);
  Histogram& h = reg.histogram(labeled("e.f", "sample", "4096"));
  h.record(7);
  h.record(100000);

  const MetricsSnapshot snap = reg.snapshot();
  const std::string text = render_prometheus(snap);
  MetricsSnapshot back;
  std::string err;
  ASSERT_TRUE(parse_prometheus(text, &back, &err)) << err;
  EXPECT_EQ(back, snap);
  ASSERT_EQ(back.histograms.count(labeled("e.f", "sample", "4096")), 1u);
  EXPECT_EQ(back.counters.at(labeled("detect.evals", "percentile", "99")), 3u);
}

TEST(Expose, HostileLabelValuesRoundTrip) {
  // '}' is legal inside a quoted label value (a find('}') parse truncates
  // the block mid-value), and a value may even contain `le="` verbatim.
  MetricsRegistry reg;
  reg.counter(labeled("serve.fires", "session", "weird}id{x")).add(11);
  reg.gauge(labeled("serve.depth", "note", "le=\"7\"")).set(-2);
  Histogram& h = reg.histogram(labeled("e.f", "tag", "a}b,le=\"1\""));
  h.record(42);

  const MetricsSnapshot snap = reg.snapshot();
  const std::string text = render_prometheus(snap);
  MetricsSnapshot back;
  std::string err;
  ASSERT_TRUE(parse_prometheus(text, &back, &err)) << err;
  EXPECT_EQ(back, snap);
  EXPECT_EQ(back.counters.at(labeled("serve.fires", "session", "weird}id{x")),
            11u);
  EXPECT_EQ(back.gauges.at(labeled("serve.depth", "note", "le=\"7\"")), -2);
}

TEST(Expose, NonMonotoneBucketsRejected) {
  const std::string text =
      "# HELP hbct_x source=x\n"
      "# TYPE hbct_x histogram\n"
      "hbct_x_bucket{le=\"1\"} 5\n"
      "hbct_x_bucket{le=\"2\"} 3\n"
      "hbct_x_bucket{le=\"+Inf\"} 5\n"
      "hbct_x_sum 9\n"
      "hbct_x_count 5\n";
  MetricsSnapshot out;
  std::string err;
  EXPECT_FALSE(parse_prometheus(text, &out, &err));
  EXPECT_NE(err.find("monotone"), std::string::npos) << err;
}

TEST(Expose, ExporterPeriodicallyEvaluatesSlos) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram(labeled("serve.fire_latency.ns", "class", "conjunctive"));
  h.record(1 << 20);  // ~1ms fire

  SloTracker slos(&reg);
  slos.add(SloTracker::fire_latency("conjunctive", 0.99, 1'000));  // 1us

  std::atomic<int> exports{0};
  std::string last;
  std::mutex mu;
  Exporter::Options eopt;
  eopt.period = std::chrono::milliseconds(5);
  eopt.slos = &slos;
  {
    Exporter exp(
        reg,
        [&](const std::string& text) {
          std::lock_guard<std::mutex> lock(mu);
          last = text;
          exports.fetch_add(1);
        },
        eopt);
    while (exports.load() < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(slos.breaches(), 1u);  // edge-triggered: one breach, many scrapes
  std::lock_guard<std::mutex> lock(mu);
  MetricsSnapshot snap;
  std::string err;
  ASSERT_TRUE(parse_prometheus(last, &snap, &err)) << err;
  EXPECT_EQ(snap.counters.at(labeled("slo.breaches", "slo",
                                     "fire-p99/conjunctive")),
            1u);
}

TEST(Expose, WriteFileAtomicAndStatTable) {
  MetricsRegistry reg;
  reg.counter("serve.sessions.opened").add(3);
  reg.counter("serve.sessions.closed").add(1);
  reg.counter("serve.records").add(1000);
  reg.gauge("serve.resident_events").set(42);
  reg.counter(labeled("serve.fires", "class", "conjunctive")).add(5);
  reg.histogram(labeled("serve.fire_latency.ns", "class", "conjunctive"))
      .record(2048);

  const std::string table = render_stat_table(reg.snapshot());
  EXPECT_NE(table.find("sessions"), std::string::npos);
  EXPECT_NE(table.find("conjunctive"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/hbct_expose_atomic.prom";
  const std::string text = render_prometheus(reg.snapshot());
  ASSERT_TRUE(write_file_atomic(path, text));
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, text);
}

// ---- SLO edge semantics ----------------------------------------------------

/// Hand-builds a snapshot whose fire-latency histogram has `count` samples
/// all in the bucket containing `value_ns`.
MetricsSnapshot slo_snapshot(std::uint64_t value_ns, std::uint64_t count) {
  MetricsSnapshot snap;
  Histogram::Snapshot h;
  h.counts[Histogram::bucket_of(value_ns)] = count;
  h.count = count;
  h.sum = value_ns * count;
  snap.histograms[labeled("serve.fire_latency.ns", "class", "stable")] = h;
  return snap;
}

TEST(Slo, BreachCountsEdgesNotScrapes) {
  MetricsRegistry reg;
  SloTracker slos(&reg);
  slos.add(SloTracker::fire_latency("stable", 0.99, 10'000));  // 10us

  const MetricsSnapshot ok = slo_snapshot(1'000, 8);
  const MetricsSnapshot bad = slo_snapshot(1'000'000, 8);

  EXPECT_FALSE(slos.evaluate(ok)[0].breached);
  EXPECT_EQ(slos.breaches(), 0u);
  EXPECT_TRUE(slos.evaluate(bad)[0].breached);
  EXPECT_TRUE(slos.evaluate(bad)[0].breached);  // sustained: same edge
  EXPECT_EQ(slos.breaches(), 1u);
  EXPECT_FALSE(slos.evaluate(ok)[0].breached);  // recovery rearms
  EXPECT_TRUE(slos.evaluate(bad)[0].breached);
  EXPECT_EQ(slos.breaches(), 2u);
  EXPECT_EQ(reg.snapshot().counters.at(
                labeled("slo.breaches", "slo", "fire-p99/stable")),
            2u);
}

TEST(Slo, MinCountGatesEvaluation) {
  MetricsRegistry reg;
  SloTracker slos(&reg);
  SloSpec spec = SloTracker::fire_latency("stable", 0.99, 10'000);
  spec.min_count = 5;
  slos.add(spec);

  const auto few = slos.evaluate(slo_snapshot(1'000'000, 4));
  EXPECT_FALSE(few[0].evaluated);
  EXPECT_FALSE(few[0].breached);
  const auto enough = slos.evaluate(slo_snapshot(1'000'000, 5));
  EXPECT_TRUE(enough[0].evaluated);
  EXPECT_TRUE(enough[0].breached);
  EXPECT_EQ(slos.breaches(), 1u);
}

TEST(Slo, BreachRaisesFlightAnomaly) {
  std::string dumped_name;
  GlobalSinkGuard guard([&](const std::string&, std::string_view name) {
    dumped_name = std::string(name);
  });
  MetricsRegistry reg;
  SloTracker slos(&reg);
  slos.add(SloTracker::fire_latency("stable", 0.99, 10'000));
  slos.evaluate(slo_snapshot(1'000'000, 8));
  EXPECT_EQ(dumped_name, "slo.breach");
}

// ---- Per-class serve metrics -----------------------------------------------

TEST(ServeClassMetrics, FiresLandInPerClassSeries) {
  std::string stream;
  {
    wire::Record procs;
    procs.kind = wire::Record::Kind::kProcs;
    procs.nprocs = 1;
    wire::encode_record(stream, procs);
    wire::Record var;
    var.kind = wire::Record::Kind::kVar;
    var.name = "x";
    wire::encode_record(stream, var);
    for (int i = 0; i < 8; ++i) {
      wire::Record ev;
      ev.kind = wire::Record::Kind::kInternal;
      ev.proc = 0;
      ev.writes.push_back({0, i});
      wire::encode_record(stream, ev);
    }
    wire::Record end;
    end.kind = wire::Record::Kind::kEnd;
    wire::encode_record(stream, end);
  }

  Tracer tracer;
  serve::ServiceOptions opt;
  opt.trace = &tracer;
  serve::StreamingService svc(opt);
  serve::SessionConfig cfg;
  cfg.num_procs = 1;
  const auto sid = svc.open(cfg, [](OnlineMonitor& m) {
    m.var("x");
    m.watch_possibly(make_conjunctive({var_cmp(0, "x", Cmp::kEq, 5)}));
  });
  svc.post(sid, stream);
  svc.drain();
  ASSERT_EQ(svc.state(sid), serve::SessionState::kFinished);
  ASSERT_GE(svc.stats(sid).fires, 1);

  const MetricsSnapshot snap = tracer.metrics().snapshot();
  const std::string fires = labeled("serve.fires", "class", "conjunctive");
  ASSERT_EQ(snap.counters.count(fires), 1u);
  EXPECT_GE(snap.counters.at(fires), 1u);
  const std::string lat =
      labeled("serve.fire_latency.ns", "class", "conjunctive");
  ASSERT_EQ(snap.histograms.count(lat), 1u);
  EXPECT_GE(snap.histograms.at(lat).count, 1u);
}

// ---- JSON-escape hardening -------------------------------------------------

TEST(JsonEscape, ControlCharsAndDelEscaped) {
  EXPECT_EQ(json_escape("a\001b"), "a\\u0001b");
  EXPECT_EQ(json_escape("a\177b"), "a\\u007fb");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("nl\nhere"), "nl\\nhere");
  EXPECT_EQ(json_escape("q\"b\\s"), "q\\\"b\\\\s");
}

TEST(JsonEscape, WellFormedUtf8PassesThrough) {
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");          // é
  EXPECT_EQ(json_escape("\xe2\x82\xac"), "\xe2\x82\xac");        // €
  EXPECT_EQ(json_escape("\xf0\x9f\x94\xa5"), "\xf0\x9f\x94\xa5");  // emoji
}

TEST(JsonEscape, IllFormedBytesBecomeEscapedReplacement) {
  // Lone continuation, truncated lead, overlong NUL, CESU surrogate, 0xFF.
  EXPECT_EQ(json_escape("\x80"), "\\ufffd");
  EXPECT_EQ(json_escape("\xc3"), "\\ufffd");
  EXPECT_EQ(json_escape("\xc0\x80"), "\\ufffd\\ufffd");
  EXPECT_EQ(json_escape("\xed\xa0\x80"), "\\ufffd\\ufffd\\ufffd");
  EXPECT_EQ(json_escape("\xff"), "\\ufffd");
  // A valid tail after garbage survives.
  EXPECT_EQ(json_escape("\xffok"), "\\ufffdok");
}

TEST(JsonEscape, HostileSessionNameCannotBreakFlightDump) {
  FlightRecorder rec;
  const std::string hostile =
      std::string("evil\"]}\x01\xff\xed\xa0\x80 id\n", 17);
  const std::uint16_t name = rec.intern(hostile, "arg\x80", "\x7f");
  rec.instant(name, 1, 2);
  rec.anomaly(name, 3, 4);
  const std::string dump = rec.dump_chrome();
  std::string err;
  EXPECT_TRUE(json_validate(dump, &err)) << err;
  // And the hostile bytes never appear raw.
  EXPECT_EQ(dump.find('\x01'), std::string::npos);
  EXPECT_EQ(dump.find('\xff'), std::string::npos);
}

TEST(JsonEscape, HostileDocumentThroughJsonWriterValidates) {
  JsonWriter w;
  w.begin_object();
  w.kv("session", std::string("\000\037\177\302bad", 7));
  w.end_object();
  const std::string doc = w.take();
  std::string err;
  EXPECT_TRUE(json_validate(doc, &err)) << err;
}

}  // namespace
}  // namespace hbct
