// Unit tests for util/: rng, stats, string helpers, biguint, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/biguint.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hbct {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t bound = 1 + (i % 17);
    EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng r(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextInBoundsInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityExtremes) {
  Rng r(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, BoolProbabilityRoughlyCalibrated) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(23);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  r.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.fork();
  // Forked stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Summary, BasicStatistics) {
  Summary s = Summary::of({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EmptyIsZero) {
  Summary s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(LogLogSlope, RecoversPowerLawExponent) {
  std::vector<double> x, y;
  for (double v : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    x.push_back(v);
    y.push_back(3.5 * v * v);  // slope 2
  }
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(LogLogSlope, LinearIsSlopeOne) {
  std::vector<double> x{1, 2, 4, 8}, y{5, 10, 20, 40};
  EXPECT_NEAR(loglog_slope(x, y), 1.0, 1e-9);
}

TEST(DetectStats, AccumulateAndPrint) {
  DetectStats a, b;
  a.predicate_evals = 3;
  a.cut_steps = 2;
  b.predicate_evals = 4;
  b.lattice_nodes = 7;
  a += b;
  EXPECT_EQ(a.predicate_evals, 7u);
  EXPECT_EQ(a.cut_steps, 2u);
  EXPECT_EQ(a.lattice_nodes, 7u);
  EXPECT_NE(a.to_string().find("evals=7"), std::string::npos);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, ParseInt) {
  long long v = 0;
  EXPECT_TRUE(parse_int("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(parse_int("  7 ", v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("", v));
}

TEST(StringUtil, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 3, "ab"), "3-ab");
  EXPECT_EQ(strfmt("%s", std::string(500, 'x').c_str()).size(), 500u);
}

TEST(BigUint, SmallArithmeticMatchesU64) {
  BigUint a(123456789);
  a += BigUint(987654321);
  bool fits = false;
  EXPECT_EQ(a.to_u64(&fits), 1111111110ull);
  EXPECT_TRUE(fits);
  EXPECT_EQ(a.to_string(), "1111111110");
}

TEST(BigUint, ZeroBehaviour) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_string(), "0");
  z += BigUint(0);
  EXPECT_TRUE(z.is_zero());
  z.mul_small(12345);
  EXPECT_TRUE(z.is_zero());
}

TEST(BigUint, FactorialMatchesKnownValue) {
  BigUint f(1);
  for (std::uint64_t i = 2; i <= 30; ++i) f.mul_small(i);
  EXPECT_EQ(f.to_string(), "265252859812191058636308480000000");
}

TEST(BigUint, CarriesAcrossLimbs) {
  BigUint a(~0ull);  // 2^64 - 1
  a += BigUint(1);
  EXPECT_EQ(a.to_string(), "18446744073709551616");
  bool fits = true;
  a.to_u64(&fits);
  EXPECT_FALSE(fits);
}

TEST(BigUint, MulSmallLargeScalar) {
  BigUint a(1);
  a.mul_small(~0ull);
  a.mul_small(~0ull);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(a.to_string(), "340282366920938463426481119284349108225");
}

TEST(BigUint, Ordering) {
  EXPECT_LT(BigUint(5), BigUint(7));
  BigUint big(1);
  big.mul_small(~0ull);
  big.mul_small(16);
  EXPECT_LT(BigUint(~0ull), big);
  EXPECT_EQ(BigUint(42), BigUint(42));
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives: in_flight_ was decremented on every path, so the
  // next batch neither deadlocks nor sees stale state.
  std::atomic<int> hits{0};
  pool.parallel_for(100, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ParallelForExceptionInlinePath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(5,
                                 [](std::size_t i) {
                                   if (i == 2) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool keeps working.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, PoolOf1VsNProduceSameResults) {
  std::vector<int> seq(199, 0), par(199, 0);
  ThreadPool one(1), many(4);
  one.parallel_for(seq.size(),
                   [&](std::size_t i) { seq[i] = static_cast<int>(i * i); });
  many.parallel_for(par.size(),
                    [&](std::size_t i) { par[i] = static_cast<int>(i * i); });
  EXPECT_EQ(seq, par);
}

TEST(ThreadPool, ConcurrentParallelForCallersDoNotBlockEachOther) {
  // Each parallel_for waits on its own batch only; two external callers
  // sharing one pool must both complete with correct results.
  ThreadPool pool(4);
  std::atomic<int> a{0}, b{0};
  std::thread t1([&] { pool.parallel_for(500, [&](std::size_t) { ++a; }); });
  std::thread t2([&] { pool.parallel_for(500, [&](std::size_t) { ++b; }); });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 500);
  EXPECT_EQ(b.load(), 500);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A task body may itself fan out: the caller participates in its own
  // batch, so nesting completes even when every worker is busy.
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { ++hits; });
  });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, PreCancelledTokenRunsNothing) {
  ThreadPool pool(4);
  CancelToken cancel;
  cancel.cancel();
  std::atomic<int> hits{0};
  pool.parallel_for(
      1000, [&](std::size_t) { ++hits; }, 0, 1, &cancel);
  EXPECT_EQ(hits.load(), 0);
}

TEST(ThreadPool, CancelTokenStopsClaimingWork) {
  ThreadPool pool(4);
  CancelToken cancel;
  std::atomic<int> hits{0};
  pool.parallel_for(
      100000,
      [&](std::size_t) {
        ++hits;
        cancel.cancel();
      },
      0, 1, &cancel);
  // Every participant stops at its next claim; only in-flight iterations
  // finish.
  EXPECT_GE(hits.load(), 1);
  EXPECT_LT(hits.load(), 100000);
}

TEST(ThreadPool, MaxParallelismOneRunsInlineInOrder) {
  ThreadPool pool(4);
  std::vector<int> order;
  pool.parallel_for(
      5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, StressManySmallBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> hits{0};
    pool.parallel_for(17, [&](std::size_t) { ++hits; });
    ASSERT_EQ(hits.load(), 17);
  }
}

TEST(ThreadPool, SharedPoolHasWorkers) {
  EXPECT_GE(ThreadPool::shared().size(), 4u);
  std::atomic<int> hits{0};
  ThreadPool::shared().parallel_for(64, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 64);
}

}  // namespace
}  // namespace hbct
