// Tests for the CTL parser, the AST printer, and the compiler's lowering to
// structured predicate classes.
#include <gtest/gtest.h>

#include "ctl/compile.h"
#include "ctl/parser.h"
#include "detect/brute_force.h"
#include "poset/generate.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

using ctl::parse_query;

TEST(CtlParser, UnaryOperators) {
  for (const char* text : {"EF(x@P0 < 4)", "AF(x@P0 < 4)", "EG(x@P0 < 4)",
                           "AG(x@P0 < 4)"}) {
    auto r = parse_query(text);
    ASSERT_TRUE(r.ok) << text << ": " << r.error;
    EXPECT_TRUE(r.query.temporal);
    EXPECT_EQ(ctl::to_string(r.query), text);
  }
}

TEST(CtlParser, UntilForms) {
  auto r = parse_query("E[ x@P0 < 4 U channels_empty ]");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.op, Op::kEU);
  EXPECT_EQ(ctl::to_string(r.query), "E[x@P0 < 4 U channels_empty]");

  auto a = parse_query("A[try@P1 == 1 U critical@P1 == 1]");
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.query.op, Op::kAU);
}

TEST(CtlParser, PrecedenceNotAndOr) {
  auto r = parse_query("!x@P0 < 1 && y@P1 > 2 || z@P2 == 3");
  ASSERT_TRUE(r.ok) << r.error;
  // Or at top, And below, Not tightest.
  EXPECT_EQ(ctl::to_string(*r.query.p),
            "((!(x@P0 < 1)) && (y@P1 > 2)) || (z@P2 == 3)");
}

TEST(CtlParser, ParenthesesOverridePrecedence) {
  auto r = parse_query("x@P0 < 1 && (y@P1 > 2 || z@P2 == 3)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(ctl::to_string(*r.query.p),
            "(x@P0 < 1) && ((y@P1 > 2) || (z@P2 == 3))");
}

TEST(CtlParser, ArithmeticSumsAndTerms) {
  auto r = parse_query("x@P0 + y@P1 - 2 <= pos(1) + intransit(0,1)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(ctl::to_string(*r.query.p),
            "x@P0 + y@P1 - 2 <= pos(1) + intransit(0,1)");
}

TEST(CtlParser, BareStateFormula) {
  auto r = parse_query("true && x@P0 != 0");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.query.temporal);
}

TEST(CtlParser, ProcRefVariants) {
  EXPECT_TRUE(parse_query("pos(P2) >= 1").ok);
  EXPECT_TRUE(parse_query("pos(2) >= 1").ok);
  EXPECT_TRUE(parse_query("x@2 >= 1").ok);
}

struct BadQuery {
  const char* name;
  const char* text;
};

class CtlParserErrors : public ::testing::TestWithParam<BadQuery> {};

TEST_P(CtlParserErrors, Rejected) {
  auto r = parse_query(GetParam().text);
  EXPECT_FALSE(r.ok) << "parsed as: " << ctl::to_string(r.query);
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("col"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CtlParserErrors,
    ::testing::Values(BadQuery{"unclosed_paren", "EF(x@P0 < 4"},
                      BadQuery{"missing_until", "E[x@P0 < 4]"},
                      BadQuery{"missing_cmp", "EF(x@P0)"},
                      BadQuery{"trailing", "EF(x@P0 < 4) garbage"},
                      BadQuery{"bad_at", "EF(x@@P0 < 4)"},
                      BadQuery{"empty", ""},
                      BadQuery{"lone_op", "&& x@P0 < 1"},
                      BadQuery{"illegal_char", "EF(x@P0 < 4 $ 3)"},
                      BadQuery{"bad_proc", "EF(x@Q1 < 4)"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) {
      return info.param.name;
    });

// ---- Compiler lowering ---------------------------------------------------------

Computation vars_comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 5;
  opt.num_vars = 2;
  opt.seed = seed;
  return generate_random(opt);
}

PredicatePtr compile_text(const char* text) {
  auto parsed = parse_query(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  auto compiled = ctl::compile_state(parsed.query.p);
  EXPECT_TRUE(compiled.ok) << compiled.error;
  return compiled.pred;
}

TEST(CtlCompile, ConjunctionOfComparisonsIsConjunctive) {
  auto p = compile_text("v0@P0 < 4 && v1@P1 >= 2 && v0@P2 != 0");
  EXPECT_TRUE(as_conjunctive(p) != nullptr);
}

TEST(CtlCompile, DisjunctionIsDisjunctive) {
  auto p = compile_text("v0@P0 < 4 || v1@P1 >= 2");
  EXPECT_TRUE(as_disjunctive(p) != nullptr);
}

TEST(CtlCompile, DeMorganThroughNot) {
  // !(a || b) compiles to a conjunctive predicate via structured negation.
  auto p = compile_text("!(v0@P0 < 4 || v1@P1 >= 2)");
  EXPECT_TRUE(as_conjunctive(p) != nullptr);
}

TEST(CtlCompile, ChannelAtomsAreRegular) {
  Computation c = vars_comp(3);
  for (const char* text :
       {"intransit(0,1) <= 2", "intransit(0,1) > 0", "channels_empty"}) {
    auto p = compile_text(text);
    EXPECT_EQ(p->classes(c) & kClassRegular, kClassRegular) << text;
  }
}

TEST(CtlCompile, SumAtomsPickRelationalClasses) {
  // Monotone counters: build via producer/consumer.
  sim::Simulator s = sim::make_producer_consumer(5, 2);
  Computation c = std::move(s).run({});
  auto le = compile_text("produced@P0 + consumed@P1 <= 7");
  EXPECT_EQ(le->classes(c) & kClassLinear, kClassLinear);
  auto ge = compile_text("produced@P0 + consumed@P1 >= 3");
  EXPECT_EQ(ge->classes(c) & kClassPostLinear, kClassPostLinear);
  auto diff = compile_text("produced@P0 - consumed@P1 <= 2");
  EXPECT_EQ(diff->classes(c) & kClassRegular, kClassRegular);
  // Reversed difference lowers through the mirror rule.
  auto diff2 = compile_text("produced@P0 - consumed@P1 >= 0");
  EXPECT_EQ(diff2->classes(c) & kClassRegular, kClassRegular);
}

TEST(CtlCompile, ConstantFolding) {
  Computation c = vars_comp(5);
  EXPECT_TRUE(compile_text("1 + 1 == 2")->eval(c, c.initial_cut()));
  EXPECT_FALSE(compile_text("3 < 2")->eval(c, c.initial_cut()));
}

TEST(CtlCompile, NegatedSingleTermMirrorsComparison) {
  Computation c = vars_comp(6);
  auto p = compile_text("0 - v0@P0 <= -3");  // ⟺ v0@P0 >= 3
  auto q = compile_text("v0@P0 >= 3");
  LatticeChecker chk(c);
  for (NodeId v = 0; v < chk.lattice().size(); ++v)
    EXPECT_EQ(p->eval(c, chk.lattice().cut(v)),
              q->eval(c, chk.lattice().cut(v)));
}

TEST(CtlCompile, ValidationCatchesUnknowns) {
  Computation c = vars_comp(7);
  auto r1 = ctl::evaluate_query(c, "EF(nosuch@P0 == 1)");
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("unknown variable"), std::string::npos);
  auto r2 = ctl::evaluate_query(c, "EF(v0@P9 == 1)");
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("process"), std::string::npos);
  auto r3 = ctl::evaluate_query(c, "EF(intransit(0,9) == 0)");
  EXPECT_FALSE(r3.ok);
}

TEST(CtlCompile, EvaluateMatchesBruteForce) {
  Computation c = vars_comp(8);
  LatticeChecker chk(c);
  const char* queries[] = {
      "EF(v0@P0 >= 3 && v1@P1 <= 2)",
      "AF(v0@P0 >= 3 || v1@P2 <= 4)",
      "EG(v0@P1 >= 0)",
      "AG(v0@P0 + v1@P1 + v0@P2 >= 0)",
      "E[v0@P0 <= 9 U v1@P1 >= 3]",
      "A[v0@P0 <= 3 || v0@P0 >= 0 U v1@P2 >= 1]",
  };
  for (const char* text : queries) {
    auto fast = ctl::evaluate_query(c, text);
    ASSERT_TRUE(fast.ok) << text << ": " << fast.error;
    auto parsed = parse_query(text);
    auto p = ctl::compile_state(parsed.query.p).pred;
    PredicatePtr q;
    if (parsed.query.q) q = ctl::compile_state(parsed.query.q).pred;
    auto slow = chk.detect(parsed.query.op, *p, q.get());
    EXPECT_EQ(fast.result.holds(), slow.holds()) << text;
  }
}

TEST(CtlCompile, BareStateEvaluatesAtInitialCut) {
  Computation c = vars_comp(9);
  auto r = ctl::evaluate_query(c, "v0@P0 >= 0 && channels_empty");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.result.holds());
  EXPECT_EQ(r.algorithm, "state-eval(initial)");
}

TEST(CtlCompile, PosAndTerminatedKeywords) {
  Computation c = vars_comp(10);
  auto r = ctl::evaluate_query(c, "AF(terminated)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.result.holds());
  auto r2 = ctl::evaluate_query(c, "EF(pos(0) >= 5)");
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(r2.result.holds());  // every process has 5 events
}

}  // namespace
}  // namespace hbct
