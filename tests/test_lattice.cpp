// Tests for the explicit lattice: enumeration, Hasse structure, meet/join,
// irreducibles (cover-degree vs the direct O(n|E|) extraction), Birkhoff
// reconstruction, and path counting.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lattice/irreducible.h"
#include "lattice/lattice.h"
#include "lattice/path_count.h"
#include "poset/builder.h"
#include "poset/generate.h"
#include "util/rng.h"

namespace hbct {
namespace {

std::uint64_t binom(std::uint64_t n, std::uint64_t k) {
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

TEST(Lattice, IndependentGridHasProductSize) {
  // With no messages the lattice is the full grid of positions.
  Computation c = generate_independent(3, 3);
  Lattice lat = Lattice::build(c);
  EXPECT_EQ(lat.size(), 4u * 4 * 4);
  // Grid edge count: positions with one coordinate advanceable.
  EXPECT_EQ(lat.num_edges(), 3u * 3 * 16);
}

TEST(Lattice, ChainComputationIsAChain) {
  Computation c = generate_chain(3, 3);
  Lattice lat = Lattice::build(c);
  EXPECT_EQ(lat.size(), static_cast<std::size_t>(c.total_events() + 1));
  for (NodeId v = 0; v < lat.size(); ++v)
    EXPECT_LE(lat.successors(v).size(), 1u);
}

TEST(Lattice, EveryNodeConsistentAndEdgesAreCovers) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = 5;
  Computation c = generate_random(opt);
  Lattice lat = Lattice::build(c);
  for (NodeId v = 0; v < lat.size(); ++v) {
    EXPECT_TRUE(c.is_consistent(lat.cut(v)));
    for (NodeId s : lat.successors(v)) {
      EXPECT_EQ(lat.cut(s).total(), lat.cut(v).total() + 1);
      EXPECT_TRUE(lat.cut(v).subset_of(lat.cut(s)));
      // Predecessor lists mirror successor lists.
      auto preds = lat.predecessors(s);
      EXPECT_NE(std::find(preds.begin(), preds.end(), v), preds.end());
    }
  }
  EXPECT_EQ(lat.cut(lat.bottom()), c.initial_cut());
  EXPECT_EQ(lat.cut(lat.top()), c.final_cut());
}

TEST(Lattice, MeetJoinAgreeWithCutOps) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = 7;
  Computation c = generate_random(opt);
  Lattice lat = Lattice::build(c);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    NodeId a = static_cast<NodeId>(rng.next_below(lat.size()));
    NodeId b = static_cast<NodeId>(rng.next_below(lat.size()));
    EXPECT_EQ(lat.cut(lat.meet(a, b)),
              Cut::meet(lat.cut(a), lat.cut(b)));
    EXPECT_EQ(lat.cut(lat.join(a, b)),
              Cut::join(lat.cut(a), lat.cut(b)));
  }
}

TEST(Lattice, TryBuildHonorsCap) {
  Computation c = generate_independent(4, 4);  // 5^4 = 625 cuts
  EXPECT_FALSE(Lattice::try_build(c, 100).has_value());
  auto lat = Lattice::try_build(c, 1000);
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(lat->size(), 625u);
}

TEST(Lattice, NodeOfRejectsInconsistentCut) {
  ComputationBuilder b(2);
  MsgId m = b.send(0, 1);
  b.receive(1, m);
  Computation c = std::move(b).build();
  Lattice lat = Lattice::build(c);
  EXPECT_EQ(lat.node_of(Cut({0, 1})), kNoNode);
  EXPECT_NE(lat.node_of(Cut({1, 1})), kNoNode);
}

// ---- Irreducibles: the heart of Algorithm A2 -------------------------------

class IrreducibleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrreducibleProperty, DirectExtractionMatchesCoverDegree) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.p_send = 0.3;
  opt.seed = GetParam();
  Computation c = generate_random(opt);
  Lattice lat = Lattice::build(c);

  // Cover-degree definition on the explicit lattice.
  auto as_cut_set = [&](const std::vector<NodeId>& nodes) {
    std::set<std::vector<std::int32_t>> s;
    for (NodeId v : nodes) s.insert(lat.cut(v).raw());
    return s;
  };
  auto as_raw_set = [&](const std::vector<Cut>& cuts) {
    std::set<std::vector<std::int32_t>> s;
    for (const Cut& g : cuts) s.insert(g.raw());
    return s;
  };

  EXPECT_EQ(as_cut_set(meet_irreducibles(lat)),
            as_raw_set(meet_irreducible_cuts(c)));
  EXPECT_EQ(as_cut_set(join_irreducibles(lat)),
            as_raw_set(join_irreducible_cuts(c)));

  // |M(L)| == |E| (events and meet-irreducibles are in bijection).
  EXPECT_EQ(meet_irreducible_cuts(c).size(),
            static_cast<std::size_t>(c.total_events()));
  EXPECT_EQ(as_raw_set(meet_irreducible_cuts(c)).size(),
            static_cast<std::size_t>(c.total_events()));
}

TEST_P(IrreducibleProperty, BirkhoffReconstructionIsIdentity) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = GetParam() + 1000;
  Computation c = generate_random(opt);
  Lattice lat = Lattice::build(c);
  const Cut final = c.final_cut();
  for (NodeId v = 0; v < lat.size(); ++v) {
    const Cut& g = lat.cut(v);
    // Corollary 4: g = meet of the meet-irreducibles above it (except the
    // final cut, whose meet over the empty set is the top itself).
    EXPECT_EQ(birkhoff_meet_reconstruction(c, g), g);
    // Dually with join-irreducibles (except the initial cut).
    EXPECT_EQ(birkhoff_join_reconstruction(c, g), g);
    (void)final;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrreducibleProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- Path counting ----------------------------------------------------------

TEST(PathCount, GridChainCountIsMultinomial) {
  // 2 processes with a and b events: C(a+b, a) maximal chains.
  Computation c = generate_independent(2, 4);
  Lattice lat = Lattice::build(c);
  bool fits = false;
  EXPECT_EQ(count_maximal_chains(lat).to_u64(&fits), binom(8, 4));
  EXPECT_TRUE(fits);
}

TEST(PathCount, ChainHasExactlyOnePath) {
  Computation c = generate_chain(4, 2);
  Lattice lat = Lattice::build(c);
  EXPECT_EQ(count_maximal_chains(lat).to_string(), "1");
}

TEST(PathCount, ThreeProcGridMultinomial) {
  Computation c = generate_independent(3, 2);
  Lattice lat = Lattice::build(c);
  // 6! / (2! 2! 2!) = 90.
  bool fits = false;
  EXPECT_EQ(count_maximal_chains(lat).to_u64(&fits), 90u);
}

TEST(PathCount, EuWitnessCountingRespectsPredicates) {
  // 2x2 grid; p blocks the cut <2,0>; q holds at <2,1> only.
  Computation c = generate_independent(2, 2);
  Lattice lat = Lattice::build(c);
  auto p_ok = [&](NodeId v) { return !(lat.cut(v) == Cut({2, 0})); };
  auto q_ok = [&](NodeId v) { return lat.cut(v) == Cut({2, 1}); };
  const NodeId target = lat.node_of(Cut({2, 1}));
  BigUint at_target;
  BigUint total = count_eu_witnesses(lat, p_ok, q_ok, target, &at_target);
  // Paths to <2,1> avoiding <2,0> as an interior cut: sequences of R/U moves
  // RRU, RUR, URR minus those passing through <2,0> interior (RRU) = 2.
  EXPECT_EQ(total.to_string(), "2");
  EXPECT_EQ(at_target.to_string(), "2");
}

}  // namespace
}  // namespace hbct
