// Pins the plan/dispatch/classify parity contract of analysis/plan.h:
// DetectPlan::name is a prefix of the DetectResult::algorithm string the
// detection actually reports, and the classify() report renders the same
// plans — so the three views of "which Table-1 algorithm runs" can never
// drift apart again (they did: classify used to promise A1/A2 for
// conjunctive predicates that dispatch sent to the conjunctive scans).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/optimize.h"
#include "analysis/plan.h"
#include "ctl/compile.h"
#include "detect/dispatch.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/classify.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/relational.h"

namespace hbct {
namespace {

Computation comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.num_vars = 2;
  opt.seed = seed;
  return generate_random(opt);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Every predicate family the dispatcher distinguishes.
std::vector<PredicatePtr> families(const Computation& c) {
  (void)c;
  std::vector<PredicatePtr> out;
  out.push_back(var_cmp(0, "v0", Cmp::kGe, 1));  // local
  out.push_back(make_conjunctive(
      {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)}));
  out.push_back(make_disjunctive(
      {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)}));
  out.push_back(make_terminated());                   // stable
  out.push_back(all_channels_empty());                // regular + oracles
  out.push_back(channel_bound_le(0, 1, 0));           // linear + oracle
  out.push_back(sum_le({{0, "v0"}, {1, "v0"}}, 3));   // relational
  out.push_back(make_asserted(
      [](const Computation& cc, const Cut& g) {
        return g.total() == cc.total_events();
      },
      0, "arbitrary"));  // classless: explicit search
  out.push_back(make_asserted(
      [](const Computation&, const Cut& g) { return g.total() >= 5; },
      kClassStable, "asserted-stable"));
  // Claims linear without an oracle: EF must route around Chase-Garg.
  out.push_back(make_asserted(
      [](const Computation&, const Cut& g) { return g.total() >= 5; },
      kClassLinear, "asserted-linear-no-oracle"));
  // DNF over mixed operands: exercises the distributive splits.
  out.push_back(make_or(make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 1),
                                          var_cmp(1, "v1", Cmp::kLe, 3)}),
                        all_channels_empty()));
  return out;
}

TEST(PlanParity, UnaryPlanNameIsPrefixOfAlgorithm) {
  const Computation c = comp(7);
  for (const PredicatePtr& p : families(c)) {
    const PredShape s = shape_of(p, c);
    for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
      const DetectPlan plan = plan_unary(op, s, /*allow_exponential=*/true);
      const DetectResult r = detect(c, op, p, nullptr, {});
      EXPECT_TRUE(starts_with(r.algorithm, plan.name))
          << to_string(op) << "(" << p->describe() << "): plan " << plan.name
          << " vs algorithm " << r.algorithm;
    }
  }
}

TEST(PlanParity, RefusedPlanNameIsPrefixToo) {
  const Computation c = comp(8);
  DispatchOptions opt;
  opt.allow_exponential = false;
  const PredicatePtr p = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() == 3; }, 0,
      "probe");
  for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
    const DetectPlan plan =
        plan_unary(op, shape_of(p, c), /*allow_exponential=*/false);
    EXPECT_TRUE(plan.refused);
    const DetectResult r = detect(c, op, p, nullptr, opt);
    EXPECT_TRUE(starts_with(r.algorithm, plan.name)) << r.algorithm;
    EXPECT_NE(r.algorithm.find("(refused)"), std::string::npos);
    EXPECT_EQ(r.verdict, Verdict::kUnknown);
  }
}

TEST(PlanParity, UntilPlanNameIsPrefixOfAlgorithm) {
  const Computation c = comp(9);
  const auto conj = make_conjunctive(
      {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)});
  const auto disj = make_disjunctive(
      {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)});
  const PredicatePtr linear_q = var_cmp(2, "v0", Cmp::kGe, 2);
  // Mixed operands keep make_or generic (two locals would canonicalize
  // into a DisjunctivePredicate, whose disjuncts() is empty): both branches
  // are linear with forbidden() oracles, so E[p U q1||q2] splits into A3s.
  const PredicatePtr split_q =
      make_or(channel_bound_le(0, 1, 0), var_cmp(2, "v1", Cmp::kGe, 1));
  const PredicatePtr opaque = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() == 4; }, 0,
      "opaque");

  struct Case {
    Op op;
    PredicatePtr p, q;
    const char* expect;  // expected plan name, as a sanity anchor
  };
  const std::vector<Case> cases = {
      {Op::kEU, conj, linear_q, "A3-eu"},
      {Op::kEU, conj, split_q, "eu-or-split(A3)"},
      {Op::kEU, opaque, opaque, "eu-dfs"},
      {Op::kAU, disj, disj, "au-disjunctive"},
      {Op::kAU, conj, opaque, "au-dfs"},
  };
  for (const Case& k : cases) {
    const bool q_split =
        k.op == Op::kEU && !k.q->disjuncts().empty() &&
        [&] {
          for (const PredicatePtr& s : k.q->disjuncts())
            if (!(effective_classes(*s, c) & kClassLinear) ||
                !s->has_forbidden())
              return false;
          return true;
        }();
    const DetectPlan plan = plan_until(k.op, shape_of(k.p, c),
                                       shape_of(k.q, c), q_split, true);
    EXPECT_STREQ(plan.name, k.expect);
    const DetectResult r = detect(c, k.op, k.p, k.q, {});
    EXPECT_TRUE(starts_with(r.algorithm, plan.name))
        << to_string(k.op) << ": plan " << plan.name << " vs algorithm "
        << r.algorithm;
  }
}

TEST(PlanParity, ClassifyRendersTheSamePlans) {
  const Computation c = comp(10);
  for (const PredicatePtr& p : families(c)) {
    const ClassReport rep = classify(*p, c);
    const PredShape s = shape_of(p, c);
    const struct {
      Op op;
      const std::string* field;
    } rows[] = {{Op::kEF, &rep.ef},
                {Op::kAF, &rep.af},
                {Op::kEG, &rep.eg},
                {Op::kAG, &rep.ag}};
    for (const auto& row : rows) {
      const DetectPlan plan = plan_unary(row.op, s, true);
      EXPECT_TRUE(starts_with(*row.field, plan.name))
          << p->describe() << ": classify says '" << *row.field
          << "', plan says '" << plan.name << "'";
    }
  }
}

TEST(PlanParity, ResultPlanFieldMatchesAlgorithm) {
  const Computation c = comp(11);
  DispatchOptions opt;
  opt.audit = AuditMode::kLintOnly;
  for (const PredicatePtr& p : families(c)) {
    for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
      const DetectResult r = detect(c, op, p, nullptr, opt);
      ASSERT_FALSE(r.plan.empty());
      // r.plan is "<name> (<cost>)"; the name must prefix the algorithm.
      const std::string name = r.plan.substr(0, r.plan.find(" ("));
      EXPECT_TRUE(starts_with(r.algorithm, name))
          << r.plan << " vs " << r.algorithm;
    }
  }
}

/// The optimizer extends the parity contract: under OptimizeMode::kApply the
/// outcome's plan_after must name the algorithm the rewritten query actually
/// dispatches to, and the chosen candidate can never be priced above the
/// query as written (the original is always a candidate; ties keep it).
TEST(PlanParity, OptimizerPlanAfterMatchesDispatchedAlgorithm) {
  const Computation c = comp(13);
  DispatchOptions opt;
  opt.optimize = OptimizeMode::kApply;
  const char* queries[] = {
      "EF(pos(0) + pos(1) > 3)",   // infer-classes reroute
      "!AG(v0@P0 >= 1)",           // not-temporal-dual rescue
      "EF(v0@P0 >= 1) || EF(v1@P1 >= 1)",  // merge-ef-or
      "EF(v0@P0 >= 1 && v1@P1 <= 3)",      // already optimal
      "AG(v0@P0 >= 0)",
      "AF(terminated)",
  };
  for (const char* text : queries) {
    const auto parsed = ctl::parse_query(text);
    ASSERT_TRUE(parsed.ok) << text;
    const ctl::OptimizeOutcome oc = ctl::optimize_query(c, parsed.query);
    EXPECT_LE(oc.cost_after, oc.cost_before) << text;
    const auto r = ctl::evaluate_query(c, text, opt);
    ASSERT_TRUE(r.ok) << text << ": " << r.error;
    // plan_after is "<name> (<cost>)"; the name prefixes the algorithm.
    const std::string name = oc.plan_after.substr(0, oc.plan_after.find(" ("));
    ASSERT_FALSE(name.empty()) << text;
    EXPECT_TRUE(starts_with(r.result.algorithm, name))
        << text << ": plan_after " << oc.plan_after << " vs algorithm "
        << r.result.algorithm;
  }
}

/// The weekday drift that motivated the shared planner: a regular predicate
/// with oracles must hit A1/A2 for EG/AG, while a structurally conjunctive
/// one must hit the conjunctive scans — in dispatch AND classify.
TEST(PlanParity, RegularVsConjunctiveRouting) {
  const Computation c = comp(12);
  const PredicatePtr reg = all_channels_empty();
  const PredicatePtr conj = make_conjunctive(
      {var_cmp(0, "v0", Cmp::kGe, 1), var_cmp(1, "v1", Cmp::kLe, 3)});

  EXPECT_TRUE(starts_with(detect(c, Op::kEG, reg, nullptr, {}).algorithm,
                          "A1-eg-linear"));
  EXPECT_TRUE(starts_with(detect(c, Op::kAG, reg, nullptr, {}).algorithm,
                          "A2-ag-linear"));
  EXPECT_TRUE(starts_with(detect(c, Op::kEG, conj, nullptr, {}).algorithm,
                          "eg-conjunctive-scan"));
  EXPECT_TRUE(starts_with(detect(c, Op::kAG, conj, nullptr, {}).algorithm,
                          "ag-conjunctive-scan"));

  const ClassReport rrep = classify(*reg, c);
  EXPECT_TRUE(starts_with(rrep.eg, "A1-eg-linear"));
  EXPECT_TRUE(starts_with(rrep.ag, "A2-ag-linear"));
  const ClassReport crep = classify(*conj, c);
  EXPECT_TRUE(starts_with(crep.eg, "eg-conjunctive-scan"));
  EXPECT_TRUE(starts_with(crep.ag, "ag-conjunctive-scan"));
}

}  // namespace
}  // namespace hbct
