// Differential suite for the incremental until evaluator (detect/until_inc):
// the amortized EG(p) prefix table must be *observationally invisible* —
// bit-identical verdicts, witness cuts, witness paths, bounds and stats
// against the batch A3 decision, at every parallelism width and down a
// budget ladder that trips mid-scan. Plus the online contracts the
// amortization leans on: suspension/resume under round budgets, GC-on vs
// GC-off invariance, and the tightened (but still sound) frontier pin.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "detect/until.h"
#include "detect/until_inc.h"
#include "online/monitor.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/local.h"
#include "predicate/predicate.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hbct {
namespace {

bool same_stats(const DetectStats& a, const DetectStats& b) {
#define HBCT_SAME_STATS_FIELD(field, label, skip) \
  if (a.field != b.field) return false;
  HBCT_DETECT_STATS_FIELDS(HBCT_SAME_STATS_FIELD)
#undef HBCT_SAME_STATS_FIELD
  return true;
}

std::string stats_diff(const DetectStats& a, const DetectStats& b) {
  std::string out;
#define HBCT_DIFF_STATS_FIELD(field, label, skip)                         \
  if (a.field != b.field)                                                 \
    out += std::string(label) + " " + std::to_string(a.field) + " vs " + \
           std::to_string(b.field) + "; ";
  HBCT_DETECT_STATS_FIELDS(HBCT_DIFF_STATS_FIELD)
#undef HBCT_DIFF_STATS_FIELD
  return out;
}

/// Full bit-identity: everything the result carries that the detection
/// semantics define (branch-superseded parallel counters are excluded from
/// the determinism contract by parallel.h, but A3's sweep merges branches
/// 0..winner in index order, so even stats must match exactly).
void expect_same_result(const DetectResult& a, const DetectResult& b,
                        const char* where) {
  EXPECT_EQ(a.verdict, b.verdict) << where;
  EXPECT_EQ(a.bound, b.bound) << where;
  EXPECT_EQ(a.algorithm, b.algorithm) << where;
  EXPECT_EQ(a.witness_cut.has_value(), b.witness_cut.has_value()) << where;
  if (a.witness_cut && b.witness_cut) {
    EXPECT_EQ(*a.witness_cut, *b.witness_cut) << where;
  }
  EXPECT_EQ(a.witness_path, b.witness_path) << where;
  EXPECT_TRUE(same_stats(a.stats, b.stats))
      << where << ": " << stats_diff(a.stats, b.stats);
}

/// A seed-derived EU instance on the generated computation: p a 1–2
/// conjunct comparison, q a linear progress/channel predicate that holds
/// mid-computation for some seeds and never for others.
struct EuInstance {
  ConjunctivePredicatePtr p;
  PredicatePtr q;
};

EuInstance make_instance(std::uint64_t seed) {
  Rng rng(seed * 101 + 3);
  std::vector<LocalPredicatePtr> conjs;
  conjs.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)), "v0",
                          static_cast<Cmp>(rng.next_below(6)),
                          rng.next_in(0, 6)));
  if (rng.next_below(2) == 0)
    conjs.push_back(var_cmp(static_cast<ProcId>(rng.next_below(3)), "v1",
                            static_cast<Cmp>(rng.next_below(6)),
                            rng.next_in(0, 6)));
  EuInstance inst;
  inst.p = make_conjunctive(std::move(conjs));
  PredicatePtr q = PredicatePtr(
      progress_ge(static_cast<ProcId>(rng.next_below(3)),
                  static_cast<EventIndex>(rng.next_in(1, 7))));
  if (rng.next_below(3) == 0) q = make_and(q, all_channels_empty());
  inst.q = std::move(q);
  return inst;
}

/// Restores the process-global toggle even when an assertion throws.
struct IncMode {
  explicit IncMode(bool on) { set_until_inc_enabled(on); }
  ~IncMode() { set_until_inc_enabled(true); }
};

// ---- Offline bit-identity -----------------------------------------------------

class UntilIncDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UntilIncDifferential, OfflineBitIdenticalAcrossWidthsAndBudgets) {
  const std::uint64_t seed = GetParam();
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 12;
  opt.p_send = 0.3;
  opt.seed = seed;
  const Computation c = generate_random(opt);
  const EuInstance inst = make_instance(seed);

  // Widths: sequential, fixed fan-out, one-per-pool-worker. The budget
  // ladder steps through trip points from "never" to "first eval".
  const std::size_t widths[] = {1, 2, 0};
  const std::uint64_t work_caps[] = {0, 512, 64, 8, 1};
  for (std::size_t width : widths) {
    for (std::uint64_t cap : work_caps) {
      Budget b;
      if (cap != 0) b.max_work = cap;
      DetectResult batch, inc;
      {
        IncMode off(false);
        batch = detect_eu(c, *inst.p, *inst.q, width, b);
      }
      {
        IncMode on(true);
        inc = detect_eu(c, *inst.p, *inst.q, width, b);
      }
      const std::string where = "seed " + std::to_string(seed) + " width " +
                                std::to_string(width) + " cap " +
                                std::to_string(cap);
      expect_same_result(batch, inc, where.c_str());
      // Offline, the incremental state is bound uninstrumented: the new
      // stats cells must stay zero or goldens/CursorModeParity would split
      // by mode.
      EXPECT_EQ(inc.stats.until_inc_evals, 0u) << where;
      EXPECT_EQ(inc.stats.until_dec_evals, 0u) << where;
    }
  }
}

TEST_P(UntilIncDifferential, OfflineWidthsAgreeWithEachOther) {
  const std::uint64_t seed = GetParam();
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 10;
  opt.p_send = 0.35;
  opt.seed = seed + 5000;
  const Computation c = generate_random(opt);
  const EuInstance inst = make_instance(seed + 5000);
  const DetectResult serial = detect_eu(c, *inst.p, *inst.q, 1);
  const DetectResult two = detect_eu(c, *inst.p, *inst.q, 2);
  const DetectResult pool = detect_eu(c, *inst.p, *inst.q, 0);
  expect_same_result(serial, two, "width 1 vs 2");
  expect_same_result(serial, pool, "width 1 vs pool");
}

INSTANTIATE_TEST_SUITE_P(Seeds, UntilIncDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- Online: incremental vs batch, streamed ------------------------------------

struct OnlineFire {
  WatchId watch;
  Verdict verdict;
  bool holds;
  Cut cut;
  std::string description;
};

/// Streams `ref` into a monitor with the given evaluator mode and round
/// budget; returns the accumulated fires. `gc_every` > 0 collects the
/// prefix periodically.
std::vector<OnlineFire> stream_until(const Computation& ref, bool inc,
                                     const Budget* budget,
                                     std::int64_t gc_every,
                                     const EuInstance& inst,
                                     std::int64_t* reclaimed_out = nullptr) {
  IncMode mode(inc);
  OnlineMonitor m(ref.num_procs());
  if (budget != nullptr) m.set_budget(*budget);
  for (VarId v = 0; v < ref.num_vars(); ++v) m.var(ref.var_name(v));
  for (ProcId i = 0; i < ref.num_procs(); ++i)
    for (VarId v = 0; v < ref.num_vars(); ++v)
      m.set_initial(i, v, ref.value_at(i, v, 0));
  m.watch_until(inst.p, inst.q);

  std::vector<OnlineFire> fires;
  const auto drain = [&] {
    for (WatchFire& f : m.poll())
      fires.push_back({f.watch, f.verdict, f.holds, f.cut, f.description});
  };
  std::vector<MsgId> msgs(static_cast<std::size_t>(ref.num_messages()),
                          kNoMsg);
  std::int64_t step = 0;
  std::int64_t reclaimed = 0;
  for (const EventId& eid : ref.linearization()) {
    const Event& ev = ref.event(eid);
    switch (ev.kind) {
      case EventKind::kInternal:
        m.internal(eid.proc);
        break;
      case EventKind::kSend:
        msgs[static_cast<std::size_t>(ev.msg)] = m.send(eid.proc, ev.peer);
        break;
      case EventKind::kReceive:
        m.receive(eid.proc, msgs[static_cast<std::size_t>(ev.msg)]);
        break;
    }
    for (const Assignment& a : ev.writes)
      m.write(eid.proc, ref.var_name(a.var), a.value);
    if (gc_every > 0 && ++step % gc_every == 0)
      reclaimed += m.collect_prefix();
    drain();
  }
  m.finish();
  drain();
  if (reclaimed_out != nullptr) *reclaimed_out += reclaimed;
  return fires;
}

void expect_same_online(const std::vector<OnlineFire>& a,
                        const std::vector<OnlineFire>& b, const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].watch, b[i].watch) << where;
    EXPECT_EQ(a[i].verdict, b[i].verdict) << where;
    EXPECT_EQ(a[i].holds, b[i].holds) << where;
    EXPECT_EQ(a[i].cut, b[i].cut) << where;
    EXPECT_EQ(a[i].description, b[i].description) << where;
  }
}

class UntilIncOnline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UntilIncOnline, StreamedVerdictsMatchBatchMode) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 12;
  opt.p_send = 0.3;
  opt.seed = GetParam() + 300;
  const Computation ref = generate_random(opt);
  const EuInstance inst = make_instance(GetParam() + 300);
  const auto inc = stream_until(ref, /*inc=*/true, nullptr, 0, inst);
  const auto batch = stream_until(ref, /*inc=*/false, nullptr, 0, inst);
  expect_same_online(inc, batch, "unbudgeted inc vs batch");
  // Cross-check against the offline detector on the full computation. An
  // until watch whose q-walk exhausts without ever finding I_q closes
  // silently at finish() (no stable cut to report), which is exactly the
  // offline kFails-with-no-witness case; when I_q exists the watch must
  // have fired, and a holds verdict pins the offline witness cut.
  const DetectResult off = detect_eu(ref, *inst.p, *inst.q);
  if (off.verdict == Verdict::kHolds) {
    ASSERT_EQ(inc.size(), 1u) << "I_q exists: the watch must fire";
    EXPECT_TRUE(inc[0].holds);
    ASSERT_TRUE(off.witness_cut.has_value());
    EXPECT_EQ(inc[0].cut, *off.witness_cut);
  } else if (!inc.empty()) {
    ASSERT_EQ(inc.size(), 1u);
    EXPECT_FALSE(inc[0].holds);
    EXPECT_EQ(off.verdict, Verdict::kFails);
  } else {
    EXPECT_EQ(off.verdict, Verdict::kFails) << "silent close requires no I_q";
  }
}

TEST_P(UntilIncOnline, SuspensionResumeUnderRoundBudgets) {
  // Tiny per-round work caps force the feed-time advance, the q-walk and
  // the decision sweep to suspend and resume across many rounds. A
  // budgeted run may legitimately end kUnknown (the bound is part of the
  // semantics, and the amortized feed work shifts where rounds trip), but
  // whenever a budgeted run *decides*, a resumed walk or table must have
  // reached exactly the unbudgeted verdict and cut — never a corrupted
  // one.
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 10;
  opt.p_send = 0.3;
  opt.seed = GetParam() + 700;
  const Computation ref = generate_random(opt);
  const EuInstance inst = make_instance(GetParam() + 700);
  const auto free_run = stream_until(ref, /*inc=*/true, nullptr, 0, inst);
  ASSERT_LE(free_run.size(), 1u);  // empty = q-walk exhausted with no I_q
  for (const std::uint64_t cap :
       {std::uint64_t{4}, std::uint64_t{16}, std::uint64_t{64}}) {
    Budget b;
    b.max_work = cap;
    const auto inc = stream_until(ref, /*inc=*/true, &b, 0, inst);
    const auto batch = stream_until(ref, /*inc=*/false, &b, 0, inst);
    const std::string where = "cap " + std::to_string(cap);
    // A budgeted run fires at most once: the decided verdict, the
    // finish-round give-up (kUnknown), or — when the q-walk exhausted
    // without finding I_q and the final round stayed under budget — the
    // same silent close as the free run.
    ASSERT_LE(inc.size(), 1u) << where;
    ASSERT_LE(batch.size(), 1u) << where;
    for (const auto* fires : {&inc, &batch}) {
      if (fires->empty()) {
        EXPECT_TRUE(free_run.empty()) << where << ": silent close requires "
                                                  "an exhausted q-walk";
        continue;
      }
      const OnlineFire& f = (*fires)[0];
      if (f.verdict == Verdict::kUnknown) continue;
      ASSERT_EQ(free_run.size(), 1u) << where;
      EXPECT_EQ(f.verdict, free_run[0].verdict) << where;
      EXPECT_EQ(f.holds, free_run[0].holds) << where;
      EXPECT_EQ(f.cut, free_run[0].cut) << where;
    }
    // When both modes decide under the same cap they must agree exactly.
    if (inc.size() == 1 && batch.size() == 1 &&
        inc[0].verdict != Verdict::kUnknown &&
        batch[0].verdict != Verdict::kUnknown) {
      EXPECT_EQ(inc[0].description, batch[0].description) << where;
      EXPECT_EQ(inc[0].cut, batch[0].cut) << where;
    }
  }
}

TEST_P(UntilIncOnline, GcInvisibleWithIncrementalUntilWatches) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 12;
  opt.p_send = 0.3;
  opt.seed = GetParam() + 1100;
  const Computation ref = generate_random(opt);
  const EuInstance inst = make_instance(GetParam() + 1100);
  const auto nogc = stream_until(ref, /*inc=*/true, nullptr, 0, inst);
  const auto gc = stream_until(ref, /*inc=*/true, nullptr, 5, inst);
  expect_same_online(nogc, gc, "gc on vs off");
}

INSTANTIATE_TEST_SUITE_P(Seeds, UntilIncOnline,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- Frontier pin --------------------------------------------------------------

TEST(UntilIncFrontier, BatchModeUntilStillPinsTheWholePrefix) {
  // The batch decision re-reads the whole sub-computation below I_q, so a
  // batch-mode watch must keep the conservative pin at 0 (the tighter pin
  // is only sound for the incremental table, which re-reads nothing).
  IncMode mode(false);
  OnlineMonitor m(2);
  m.var("x");
  m.watch_until(make_conjunctive({var_cmp(0, "x", Cmp::kLe, 100)}),
                PredicatePtr(progress_ge(1, 50)));
  for (int i = 0; i < 20; ++i) m.internal(0);
  const Cut f = m.min_watch_frontier();
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], 0);
  EXPECT_EQ(m.collect_prefix(), 0);
}

TEST(UntilIncFrontier, IncrementalPinTracksCandidateAndScanFloor) {
  // q refutes position-by-position on P0, so the Chase–Garg candidate
  // advances through the prefix; the incremental pin follows min(cand,
  // scan floor) and periodic GC reclaims the refuted prefix while the
  // watch is still undecided — the batch pin would hold it all.
  OnlineMonitor m(2);
  m.var("x");
  m.watch_until(make_conjunctive({var_cmp(0, "x", Cmp::kGe, 0)}),
                PredicatePtr(var_cmp(0, "x", Cmp::kLt, 0)));
  m.set_initial(0, m.var("x"), 0);
  std::int64_t reclaimed = 0;
  for (int i = 0; i < 200; ++i) {
    m.internal(0);
    m.write(0, "x", i + 1);
    if (i % 16 == 15) reclaimed += m.collect_prefix();
  }
  EXPECT_TRUE(m.poll().empty()) << "q never holds: watch must stay pending";
  EXPECT_GT(reclaimed, 0)
      << "tighter pin never released the refuted prefix";
  m.finish();
  // No I_q exists anywhere, so the q-walk exhausts and the watch closes
  // silently — the documented no-stable-cut outcome, identical to batch
  // mode.
  EXPECT_TRUE(m.poll().empty());
}

TEST(UntilIncFrontier, PinSoundnessUnderGcDifferential) {
  // The pin may only release positions the decision provably never reads
  // again. Aggressive GC every event with an eventually-deciding watch:
  // verdict and witness cut must match the GC-off run exactly.
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 14;
  opt.p_send = 0.35;
  opt.seed = 77;
  const Computation ref = generate_random(opt);
  const EuInstance inst = make_instance(77);
  const auto nogc = stream_until(ref, /*inc=*/true, nullptr, 0, inst);
  const auto gc = stream_until(ref, /*inc=*/true, nullptr, 1, inst);
  expect_same_online(nogc, gc, "gc every event");
}

// ---- State sizing --------------------------------------------------------------

TEST(UntilIncState, WatchStateBytesGrowWithTheTable) {
  OnlineMonitor m(2);
  m.var("x");
  const std::size_t before = m.watch_state_bytes();
  m.watch_until(make_conjunctive({var_cmp(0, "x", Cmp::kGe, 0)}),
                PredicatePtr(progress_ge(1, 1'000)));
  EXPECT_GT(m.watch_state_bytes(), before);
}

}  // namespace
}  // namespace hbct
