// Tests for the predicate taxonomy: class closure, combinator algebra,
// structured negation, and ground-truth class membership on explicit
// lattices (brute_check_classes).
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "poset/builder.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/classify.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/relational.h"
#include "util/rng.h"

namespace hbct {
namespace {

TEST(Classes, ClosureRules) {
  EXPECT_EQ(close_classes(kClassLocal) & kClassConjunctive, kClassConjunctive);
  EXPECT_EQ(close_classes(kClassLocal) & kClassDisjunctive, kClassDisjunctive);
  EXPECT_EQ(close_classes(kClassConjunctive) & kClassRegular, kClassRegular);
  EXPECT_EQ(close_classes(kClassRegular) & kClassLinear, kClassLinear);
  EXPECT_EQ(close_classes(kClassRegular) & kClassPostLinear, kClassPostLinear);
  EXPECT_EQ(close_classes(kClassDisjunctive) & kClassObserverIndependent,
            kClassObserverIndependent);
  EXPECT_EQ(close_classes(kClassStable) & kClassObserverIndependent,
            kClassObserverIndependent);
  // Local predicates reach everything through the chain.
  const ClassSet local = close_classes(kClassLocal);
  for (ClassSet f : {kClassConjunctive, kClassDisjunctive, kClassRegular,
                     kClassLinear, kClassPostLinear, kClassObserverIndependent})
    EXPECT_EQ(local & f, f);
  EXPECT_EQ(close_classes(0), 0u);
}

TEST(Classes, ToStringNames) {
  EXPECT_EQ(classes_to_string(0), "arbitrary");
  EXPECT_NE(classes_to_string(kClassLinear).find("linear"),
            std::string::npos);
  EXPECT_NE(classes_to_string(close_classes(kClassConjunctive))
                .find("regular"),
            std::string::npos);
}

Computation small_comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.num_vars = 2;
  opt.seed = seed;
  return generate_random(opt);
}

TEST(Predicates, LocalEvalAndDescribe) {
  Computation c = small_comp(1);
  auto p = var_cmp(1, "v0", Cmp::kGe, 3);
  Cut g = c.final_cut();
  EXPECT_EQ(p->eval(c, g), c.value_at(1, *c.var_id("v0"), g[1]) >= 3);
  EXPECT_NE(p->describe().find("v0@P1 >= 3"), std::string::npos);
  EXPECT_EQ(p->proc(), 1);
  // Negation stays local with inverted truth.
  auto np = p->negate();
  EXPECT_EQ(np->eval(c, g), !p->eval(c, g));
  EXPECT_TRUE(std::dynamic_pointer_cast<const LocalPredicate>(np) != nullptr);
}

TEST(Predicates, ConjunctiveCanonicalization) {
  // Two conjuncts on the same process collapse into one local.
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 1),
                             var_cmp(0, "v0", Cmp::kLe, 5),
                             var_cmp(1, "v1", Cmp::kEq, 0)});
  EXPECT_EQ(p->locals().size(), 2u);
  EXPECT_NE(p->local_for(0), nullptr);
  EXPECT_NE(p->local_for(1), nullptr);
  EXPECT_EQ(p->local_for(2), nullptr);

  Computation c = small_comp(2);
  Cut g = c.initial_cut();
  const VarId v0 = *c.var_id("v0"), v1 = *c.var_id("v1");
  const bool expect = c.value_at(0, v0, 0) >= 1 && c.value_at(0, v0, 0) <= 5 &&
                      c.value_at(1, v1, 0) == 0;
  EXPECT_EQ(p->eval(c, g), expect);
}

TEST(Predicates, ConjunctiveNegationIsDisjunctive) {
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kLt, 4),
                             var_cmp(1, "v0", Cmp::kLt, 4)});
  auto np = p->negate();
  auto d = std::dynamic_pointer_cast<const DisjunctivePredicate>(np);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->locals().size(), 2u);
  Computation c = small_comp(3);
  LatticeChecker chk(c);
  for (NodeId v = 0; v < chk.lattice().size(); ++v)
    EXPECT_NE(p->eval(c, chk.lattice().cut(v)),
              np->eval(c, chk.lattice().cut(v)));
}

TEST(Predicates, MakeAndBuildsConjunctive) {
  PredicatePtr a = var_cmp(0, "v0", Cmp::kLt, 4);
  PredicatePtr b = var_cmp(1, "v0", Cmp::kLt, 4);
  auto p = make_and(a, b);
  EXPECT_TRUE(as_conjunctive(p) != nullptr);
  auto q = make_or(a, b);
  EXPECT_TRUE(as_disjunctive(q) != nullptr);
  // Mixed structure falls back to generic combinators but keeps evaluation.
  auto mixed = make_and(a, all_channels_empty());
  EXPECT_TRUE(as_conjunctive(mixed) == nullptr);
  Computation c = small_comp(4);
  EXPECT_EQ(mixed->eval(c, c.initial_cut()),
            a->eval(c, c.initial_cut()));  // channels empty initially
}

TEST(Predicates, EffectiveClassesAddsOiWhenHoldsInitially) {
  Computation c = small_comp(5);
  // A predicate true at the initial cut is observer-independent (the
  // NP-reduction's argument).
  auto p = make_asserted(
      [](const Computation&, const Cut& g) { return g.total() != 1; }, 0,
      "weird");
  EXPECT_EQ(p->classes(c), 0u);
  EXPECT_EQ(effective_classes(*p, c) & kClassObserverIndependent,
            kClassObserverIndependent);
}

TEST(Predicates, ConstantsBelongEverywhere) {
  Computation c = small_comp(6);
  for (auto p : {make_true(), make_false()}) {
    const ClassSet s = p->classes(c);
    for (ClassSet f : {kClassConjunctive, kClassDisjunctive, kClassStable,
                       kClassLinear, kClassPostLinear, kClassRegular})
      EXPECT_EQ(s & f, f) << p->describe();
  }
  EXPECT_TRUE(make_true()->eval(c, c.initial_cut()));
  EXPECT_FALSE(make_false()->eval(c, c.initial_cut()));
  EXPECT_FALSE(make_not(make_true())->eval(c, c.initial_cut()));
}

TEST(Predicates, TerminatedIsStable) {
  Computation c = small_comp(7);
  auto t = make_terminated();
  EXPECT_EQ(t->classes(c) & kClassStable, kClassStable);
  EXPECT_FALSE(t->eval(c, c.initial_cut()));
  EXPECT_TRUE(t->eval(c, c.final_cut()));
  LatticeChecker chk(c);
  EXPECT_TRUE(brute_check_classes(chk, *t).stable);
}

// ---- Ground-truth class membership on explicit lattices --------------------

class ClassGroundTruth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassGroundTruth, ConjunctiveIsRegular) {
  Computation c = small_comp(GetParam());
  LatticeChecker chk(c);
  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 5),
                             var_cmp(1, "v1", Cmp::kGe, 2),
                             var_cmp(2, "v0", Cmp::kNe, 3)});
  auto gc = brute_check_classes(chk, *p);
  EXPECT_TRUE(gc.linear);
  EXPECT_TRUE(gc.post_linear);
  EXPECT_TRUE(gc.regular);
}

TEST_P(ClassGroundTruth, DisjunctiveIsObserverIndependent) {
  Computation c = small_comp(GetParam() + 100);
  LatticeChecker chk(c);
  auto p = make_disjunctive({var_cmp(0, "v0", Cmp::kEq, 4),
                             var_cmp(2, "v1", Cmp::kEq, 4)});
  EXPECT_TRUE(brute_check_classes(chk, *p).observer_independent);
}

TEST_P(ClassGroundTruth, ChannelBoundsAreRegular) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 5;
  opt.p_send = 0.45;
  opt.p_recv = 0.3;
  opt.seed = GetParam() + 200;
  Computation c = generate_random(opt);
  LatticeChecker chk(c);
  for (auto p : {channel_bound_le(0, 1, 1), channel_bound_ge(1, 0, 1),
                 channel_empty(0, 2), all_channels_empty()}) {
    auto gc = brute_check_classes(chk, *p);
    EXPECT_TRUE(gc.regular) << p->describe();
    EXPECT_EQ(p->classes(c) & kClassRegular, kClassRegular);
  }
}

TEST_P(ClassGroundTruth, MonotoneRelationalClasses) {
  // Build a computation with non-decreasing counters via explicit writes.
  ComputationBuilder b(2);
  Rng rng(GetParam());
  VarId x = b.var("x"), y = b.var("y");
  std::int64_t xv = 0, yv = 0;
  MsgId pend = kNoMsg;
  for (int k = 0; k < 5; ++k) {
    xv += rng.next_in(0, 2);
    b.internal(0);
    b.write(0, x, xv);
    if (k == 2) pend = b.send(0, 1);
    yv += rng.next_in(0, 2);
    b.internal(1);
    b.write(1, y, yv);
  }
  if (pend != kNoMsg) b.receive(1, pend);
  Computation c = std::move(b).build();
  EXPECT_TRUE(is_nondecreasing(c, 0, "x"));
  EXPECT_TRUE(is_nondecreasing(c, 1, "y"));

  LatticeChecker chk(c);
  auto le = sum_le({{0, "x"}, {1, "y"}}, 3);
  auto ge = sum_ge({{0, "x"}, {1, "y"}}, 3);
  auto diff = diff_le({0, "x"}, {1, "y"}, 1);

  EXPECT_EQ(le->classes(c) & kClassLinear, kClassLinear);
  EXPECT_TRUE(brute_check_classes(chk, *le).linear);
  EXPECT_EQ(ge->classes(c) & kClassPostLinear, kClassPostLinear);
  EXPECT_TRUE(brute_check_classes(chk, *ge).post_linear);
  EXPECT_EQ(diff->classes(c) & kClassRegular, kClassRegular);
  EXPECT_TRUE(brute_check_classes(chk, *diff).regular);
}

TEST(Predicates, NonMonotoneRelationalClaimsNothing) {
  ComputationBuilder b(1);
  VarId x = b.var("x");
  b.internal(0);
  b.write(0, x, 5);
  b.internal(0);
  b.write(0, x, 2);  // decreases
  Computation c = std::move(b).build();
  EXPECT_FALSE(is_nondecreasing(c, 0, "x"));
  EXPECT_TRUE(is_nonincreasing(c, 0, "x") == false);  // 0 -> 5 increased
  auto le = sum_le({{0, "x"}}, 3);
  EXPECT_EQ(le->classes(c), 0u);
}

TEST(Predicates, ClassifyReportMentionsPaperAlgorithms) {
  Computation c = small_comp(11);
  // Regular-but-not-conjunctive predicates take the paper's A1/A2 routes.
  auto p = all_channels_empty();
  ClassReport r = classify(*p, c);
  EXPECT_NE(r.eg.find("A1"), std::string::npos);
  EXPECT_NE(r.ag.find("A2"), std::string::npos);
  EXPECT_NE(to_string(r).find("EF ->"), std::string::npos);

  // Conjunctive predicates report the conjunctive scans — the same route
  // dispatch takes (tests/test_plan_parity.cpp pins the agreement).
  auto cj = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 9)});
  ClassReport rc = classify(*cj, c);
  EXPECT_NE(rc.eg.find("eg-conjunctive-scan"), std::string::npos);
  EXPECT_NE(rc.ag.find("ag-conjunctive-scan"), std::string::npos);

  auto s = make_terminated();
  ClassReport rs = classify(*s, c);
  EXPECT_NE(rs.ef.find("stable"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassGroundTruth,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace hbct
