// Theorem 7's footnote: E[p U q] needs only a *least satisfying cut* for q,
// not full linearity. detect_eu_at takes that cut from the caller; here it
// is computed by brute force for deliberately non-linear q predicates, and
// the verdict is cross-checked against the lattice EU oracle.
#include <gtest/gtest.h>

#include "detect/brute_force.h"
#include "detect/until.h"
#include "poset/generate.h"
#include "predicate/conjunctive.h"
#include "util/rng.h"

namespace hbct {
namespace {

/// Brute-force least satisfying cut; nullopt when unsatisfied or when no
/// unique least cut exists (the footnote's precondition fails).
std::optional<Cut> brute_least_cut(const LatticeChecker& chk,
                                   const Predicate& q) {
  const auto labels = chk.label(q);
  std::optional<Cut> least;
  for (NodeId v = 0; v < chk.lattice().size(); ++v) {
    if (!labels[v]) continue;
    least = least ? Cut::meet(*least, chk.lattice().cut(v))
                  : chk.lattice().cut(v);
  }
  if (!least) return std::nullopt;
  const NodeId node = chk.lattice().node_of(*least);
  if (node == kNoNode || !labels[node]) return std::nullopt;  // no least cut
  return least;
}

class UntilFootnote : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UntilFootnote, NonLinearQWithLeastCut) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = GetParam();
  Computation c = generate_random(opt);
  LatticeChecker chk(c);
  Rng rng(GetParam() * 19 + 7);

  for (int round = 0; round < 6; ++round) {
    // q = "at least k events total AND some process past threshold" — a
    // union-ish shape that is generally NOT meet-closed, but often has a
    // least cut.
    const std::int64_t k = rng.next_in(1, 8);
    const std::int64_t t = rng.next_in(1, 4);
    auto q = make_asserted(
        [k, t](const Computation& cc, const Cut& g) {
          bool past = false;
          for (ProcId i = 0; i < cc.num_procs(); ++i)
            past |= g[static_cast<std::size_t>(i)] >= t;
          return g.total() >= k && past;
        },
        0, "nonlinear-q");

    auto iq = brute_least_cut(chk, *q);
    if (!iq) continue;  // footnote precondition fails: skip this q

    auto p = make_conjunctive(
        {var_cmp(0, "v0", Cmp::kLe, static_cast<std::int64_t>(rng.next_in(2, 9))),
         var_cmp(1, "v1", Cmp::kLe, static_cast<std::int64_t>(rng.next_in(2, 9)))});

    DetectResult fast = detect_eu_at(c, *p, *iq);
    DetectResult slow = chk.detect(Op::kEU, *p, q.get());
    EXPECT_EQ(fast.holds(), slow.holds())
        << "k=" << k << " t=" << t << " p=" << p->describe();
    if (fast.holds()) {
      EXPECT_EQ(*fast.witness_cut, *iq);
      EXPECT_TRUE(q->eval(c, fast.witness_path.back()));
      for (std::size_t i = 0; i + 1 < fast.witness_path.size(); ++i)
        EXPECT_TRUE(p->eval(c, fast.witness_path[i]));
    }
  }
}

TEST_P(UntilFootnote, AgreesWithLinearPathWhenQIsLinear) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = GetParam() + 50;
  Computation c = generate_random(opt);
  LatticeChecker chk(c);

  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kLe, 7)});
  auto q = make_conjunctive({var_cmp(1, "v0", Cmp::kGe, 2),
                             var_cmp(2, "v1", Cmp::kGe, 1)});
  auto iq = brute_least_cut(chk, *q);
  DetectResult via_oracle = detect_eu(c, *p, *q);
  if (iq) {
    DetectResult via_cut = detect_eu_at(c, *p, *iq);
    EXPECT_EQ(via_cut.holds(), via_oracle.holds());
  } else {
    EXPECT_FALSE(via_oracle.holds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UntilFootnote,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace hbct
