// Global allocation counting for the zero-copy ingestion tests.
//
// alloc_hook.cpp replaces ::operator new/new[] with versions that bump a
// counter while counting is enabled (and forward to malloc either way).
// The mtrace view-mode test uses the delta to prove that loading a trace
// N times larger does not allocate more — i.e. the loader performs no
// per-event heap allocation.
#pragma once

#include <cstdint>

namespace hbct::testhooks {

/// Total counted ::operator new calls (only those made while enabled).
std::uint64_t alloc_count();

/// Turns counting on/off; returns the previous state.
bool set_alloc_counting(bool on);

/// RAII: enables counting for the scope, exposes the delta.
class AllocCountScope {
 public:
  AllocCountScope() : prev_(set_alloc_counting(true)), base_(alloc_count()) {}
  ~AllocCountScope() { set_alloc_counting(prev_); }
  AllocCountScope(const AllocCountScope&) = delete;
  AllocCountScope& operator=(const AllocCountScope&) = delete;

  std::uint64_t count() const { return alloc_count() - base_; }

 private:
  bool prev_;
  std::uint64_t base_;
};

}  // namespace hbct::testhooks
