#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<bool> g_on{false};

void* counted_alloc(std::size_t n) {
  if (g_on.load(std::memory_order_relaxed))
    g_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  if (g_on.load(std::memory_order_relaxed))
    g_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

namespace hbct::testhooks {

std::uint64_t alloc_count() {
  return g_count.load(std::memory_order_relaxed);
}

bool set_alloc_counting(bool on) {
  return g_on.exchange(on, std::memory_order_relaxed);
}

}  // namespace hbct::testhooks

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (g_on.load(std::memory_order_relaxed))
    g_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  if (g_on.load(std::memory_order_relaxed))
    g_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
