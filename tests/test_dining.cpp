// Dining philosophers: deadlock detection as conjunctive predicate
// detection — the fault-tolerance use case from the paper's introduction
// ("on detecting a violation of a safety property like a deadlock, one of
// the processes must be aborted and restarted").
#include <gtest/gtest.h>

#include "detect/dispatch.h"
#include "online/monitor.h"
#include "predicate/conjunctive.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

constexpr std::int32_t kN = 4;

Computation run_dining(std::uint64_t seed, bool ordered) {
  sim::SimOptions o;
  o.seed = seed;
  sim::Simulator s = sim::make_dining_philosophers(kN, 2, ordered);
  return std::move(s).run(o);
}

bool stuck(const Computation& c) {
  for (ProcId i = 0; i < kN; ++i)
    if (c.value_at(i, *c.var_id("meals"), c.num_events(i)) > 0) return true;
  return false;
}

/// "Circular wait": every philosopher holds its left fork and waits for the
/// right one — a conjunctive predicate.
ConjunctivePredicatePtr deadlock_pred() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kN; ++i)
    ls.push_back(var_cmp(i, "waitr", Cmp::kEq, 1));
  return make_conjunctive(std::move(ls));
}

ConjunctivePredicatePtr all_done_pred() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kN; ++i)
    ls.push_back(var_cmp(i, "meals", Cmp::kEq, 0));
  return make_conjunctive(std::move(ls));
}

TEST(Dining, UnorderedVariantCanDeadlockAndOrderedCannot) {
  int deadlocks = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Computation unordered = run_dining(seed, false);
    unordered.validate();
    deadlocks += stuck(unordered);
    Computation ordered = run_dining(seed, true);
    ordered.validate();
    EXPECT_FALSE(stuck(ordered)) << "seed " << seed;
    EXPECT_TRUE(detect(ordered, Op::kAF, all_done_pred()).holds());
  }
  // Deterministic simulation: the unordered protocol is known to deadlock
  // on a majority of these seeds.
  EXPECT_GE(deadlocks, 3);
}

TEST(Dining, DeadlockIsDetectedAsConjunctivePredicate) {
  bool saw_deadlock = false, saw_completion = false;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Computation c = run_dining(seed, false);
    DetectResult ef = detect(c, Op::kEF, deadlock_pred());
    if (stuck(c)) {
      saw_deadlock = true;
      EXPECT_TRUE(ef.holds()) << "seed " << seed;
      // The deadlocked state persists to the final cut.
      EXPECT_TRUE(deadlock_pred()->eval(c, c.final_cut()));
      // And the witness is a real circular wait.
      EXPECT_TRUE(deadlock_pred()->eval(c, *ef.witness_cut));
    } else {
      saw_completion = true;
      // A completing run may still pass near-deadlock cuts; only the
      // all-done property must definitely hold.
      EXPECT_TRUE(detect(c, Op::kAF, all_done_pred()).holds())
          << "seed " << seed;
    }
  }
  EXPECT_TRUE(saw_deadlock);
  EXPECT_TRUE(saw_completion);
}

TEST(Dining, OnlineMonitorCatchesTheDeadlockAsItForms) {
  // Find a deadlocking seed, then replay its trace through the online
  // monitor with a deadlock watch.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Computation ref = run_dining(seed, false);
    if (!stuck(ref)) continue;

    OnlineMonitor m(ref.num_procs());
    for (VarId v = 0; v < ref.num_vars(); ++v) m.var(ref.var_name(v));
    for (ProcId i = 0; i < ref.num_procs(); ++i)
      for (VarId v = 0; v < ref.num_vars(); ++v)
        m.set_initial(i, v, ref.value_at(i, v, 0));
    WatchId w = m.watch_possibly(deadlock_pred());

    std::vector<MsgId> msg_map(static_cast<std::size_t>(ref.num_messages()),
                               kNoMsg);
    for (const EventId& eid : ref.linearization()) {
      const Event& ev = ref.event(eid);
      switch (ev.kind) {
        case EventKind::kInternal:
          m.internal(eid.proc);
          break;
        case EventKind::kSend:
          msg_map[static_cast<std::size_t>(ev.msg)] = m.send(eid.proc, ev.peer);
          break;
        case EventKind::kReceive:
          m.receive(eid.proc, msg_map[static_cast<std::size_t>(ev.msg)]);
          break;
      }
      for (const Assignment& a : ev.writes)
        m.write(eid.proc, ref.var_name(a.var), a.value);
    }
    m.finish();
    ASSERT_TRUE(m.fired(w)) << "seed " << seed;
    auto fires = m.poll();
    ASSERT_EQ(fires.size(), 1u);
    EXPECT_TRUE(deadlock_pred()->eval(m.computation(), fires[0].cut));
    return;  // one deadlocking seed suffices
  }
  FAIL() << "no deadlocking seed among 1..12";
}

TEST(Dining, ForksNeverDoubleBooked) {
  // Protocol invariant: at most one grant outstanding per fork — expressed
  // as "no two adjacent philosophers eat at once".
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Computation c = run_dining(seed, true);
    for (ProcId i = 0; i < kN; ++i) {
      auto both = make_conjunctive(
          {var_cmp(i, "eating", Cmp::kEq, 1),
           var_cmp((i + 1) % kN, "eating", Cmp::kEq, 1)});
      EXPECT_FALSE(detect(c, Op::kEF, PredicatePtr(both)).holds())
          << "seed " << seed << " pair " << i;
    }
  }
}

}  // namespace
}  // namespace hbct
