// Observation-order invariance: the happened-before model of an execution
// is independent of which valid observation (topological order) recorded
// it. Feeding the same computation's events through the online appender in
// different linearizations must produce identical models — clocks, values,
// channels, and every detection verdict.
#include <gtest/gtest.h>

#include "detect/dispatch.h"
#include "online/appender.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "util/rng.h"

namespace hbct {
namespace {

/// A random topological order of ref's events (repeated greedy choice among
/// enabled events).
std::vector<EventId> random_observation(const Computation& ref, Rng& rng) {
  std::vector<EventId> order;
  Cut g = ref.initial_cut();
  while (!(g == ref.final_cut())) {
    auto enabled = ref.enabled_procs(g);
    const ProcId i = enabled[rng.next_below(enabled.size())];
    g = ref.advance(g, i);
    order.push_back(EventId{i, g[static_cast<std::size_t>(i)]});
  }
  return order;
}

Computation replay(const Computation& ref, const std::vector<EventId>& order) {
  OnlineAppender app(ref.num_procs());
  for (VarId v = 0; v < ref.num_vars(); ++v) app.var(ref.var_name(v));
  for (ProcId i = 0; i < ref.num_procs(); ++i)
    for (VarId v = 0; v < ref.num_vars(); ++v)
      app.set_initial(i, v, ref.value_at(i, v, 0));
  std::vector<MsgId> msg_map(static_cast<std::size_t>(ref.num_messages()),
                             kNoMsg);
  for (const EventId& eid : order) {
    const Event& ev = ref.event(eid);
    switch (ev.kind) {
      case EventKind::kInternal:
        app.internal(eid.proc);
        break;
      case EventKind::kSend:
        msg_map[static_cast<std::size_t>(ev.msg)] = app.send(eid.proc, ev.peer);
        break;
      case EventKind::kReceive:
        app.receive(eid.proc, msg_map[static_cast<std::size_t>(ev.msg)]);
        break;
    }
    for (const Assignment& a : ev.writes)
      app.write(eid.proc, ref.var_name(a.var), a.value);
  }
  Computation c = app.computation();  // copy out the finished model
  return c;
}

class ObservationInvariance : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ObservationInvariance, ModelIndependentOfRecordingOrder) {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 7;
  opt.p_send = 0.35;
  opt.seed = GetParam();
  Computation ref = generate_random(opt);
  Rng rng(GetParam() * 101 + 7);

  auto conj = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 3),
                                var_cmp(1, "v1", Cmp::kLe, 4)});
  PredicatePtr lin = make_and(PredicatePtr(conj), all_channels_empty());
  const bool ef_ref = detect(ref, Op::kEF, conj).holds();
  const bool ag_ref = detect(ref, Op::kAG, lin).holds();
  const bool eg_ref = detect(ref, Op::kEG, lin).holds();

  for (int round = 0; round < 4; ++round) {
    const auto order = random_observation(ref, rng);
    Computation c = replay(ref, order);
    c.validate();

    // Structure is identical: clocks and values per event, channel state.
    for (ProcId i = 0; i < ref.num_procs(); ++i) {
      ASSERT_EQ(c.num_events(i), ref.num_events(i));
      for (EventIndex k = 1; k <= ref.num_events(i); ++k) {
        EXPECT_EQ(c.vclock(i, k), ref.vclock(i, k));
        EXPECT_EQ(c.reverse_vclock(i, k), ref.reverse_vclock(i, k));
      }
      for (VarId v = 0; v < ref.num_vars(); ++v)
        for (EventIndex k = 0; k <= ref.num_events(i); ++k)
          EXPECT_EQ(c.value_at(i, v, k), ref.value_at(i, v, k));
    }
    EXPECT_EQ(c.in_transit_total(c.final_cut()),
              ref.in_transit_total(ref.final_cut()));

    // Detection verdicts are observation-independent (the whole point of
    // working on the happened-before model rather than one interleaving).
    EXPECT_EQ(detect(c, Op::kEF, conj).holds(), ef_ref);
    EXPECT_EQ(detect(c, Op::kAG, lin).holds(), ag_ref);
    EXPECT_EQ(detect(c, Op::kEG, lin).holds(), eg_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObservationInvariance,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace hbct
