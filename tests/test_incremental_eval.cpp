// Differential suite for incremental (cursor) evaluation.
//
// The EvalCursor protocol promises bit-identical truth values to scratch
// eval() at every consistent cut, for every predicate class, under
// arbitrary advance/retreat/seek stepping. The detectors additionally
// promise identical verdicts, witnesses and DetectStats whether their
// CountingEval runs cursor-backed or scratch-backed (the global testing
// switch set_cursor_eval_enabled flips between the two), including at
// budget-trip points. Both promises are checked here over many seeds and
// every simulator workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "detect/ag_linear.h"
#include "detect/conjunctive_gw.h"
#include "detect/ef_linear.h"
#include "detect/eg_linear.h"
#include "detect/stable_oi.h"
#include "detect/until.h"
#include "poset/generate.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/relational.h"
#include "sim/workloads.h"
#include "util/rng.h"

namespace hbct {
namespace {

std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }

constexpr std::size_t kNumWorkloads = 7;

/// One computation per (workload kind, seed): the two random-poset shapes
/// plus five simulator protocols, so cursors see barrier convoys, channel
/// traffic, token chains and unstructured mixes alike.
Computation workload_comp(std::size_t kind, std::uint64_t seed) {
  switch (kind % kNumWorkloads) {
    case 0:
    case 1: {
      GenOptions opt;
      opt.num_procs = kind == 0 ? 3 : 5;
      opt.events_per_proc = kind == 0 ? 6 : 4;
      opt.num_vars = 2;
      opt.p_send = 0.3;
      opt.p_recv = 0.35;
      opt.value_lo = 0;
      opt.value_hi = 5;
      opt.seed = seed;
      return generate_random(opt);
    }
    case 2: {
      sim::SimOptions o;
      o.seed = seed;
      return std::move(sim::make_random_mixer(3, 8, 2, 0.4)).run(o);
    }
    case 3: {
      sim::SimOptions o;
      o.seed = seed;
      return std::move(sim::make_token_mutex(3, 2, false)).run(o);
    }
    case 4: {
      sim::SimOptions o;
      o.seed = seed;
      return std::move(sim::make_producer_consumer(5, 2)).run(o);
    }
    case 5: {
      sim::SimOptions o;
      o.seed = seed;
      return std::move(sim::make_barrier(3, 2)).run(o);
    }
    default: {
      sim::SimOptions o;
      o.seed = seed;
      return std::move(sim::make_alternating_bit(4, 0.3)).run(o);
    }
  }
}

/// Every predicate class with a cursor specialization, plus the opaque
/// fallbacks, built against the computation's own variables so the sim
/// workloads are exercised with live timelines.
std::vector<PredicatePtr> predicate_battery(const Computation& c, Rng& rng) {
  const std::int32_t n = c.num_procs();
  const std::string va = c.var_name(0);
  const std::string vb = c.var_name(c.num_vars() > 1 ? 1 : 0);
  const ProcId p0 = 0;
  const ProcId p1 = n > 1 ? 1 : 0;
  const ProcId pl = n - 1;

  std::vector<PredicatePtr> out;
  // Locals: structured comparisons, position progress, constants, and an
  // opaque truth table (std::function fallback inside LocalCursor).
  out.push_back(var_cmp(p0, va, Cmp::kGe, 1));
  out.push_back(var_cmp(pl, vb, Cmp::kLe, 2));
  out.push_back(pos_cmp(p1, Cmp::kLt, 3));
  out.push_back(progress_ge(p0, 2));
  out.push_back(local_const(p1, rng.next_bool()));
  {
    std::vector<bool> truth;
    for (EventIndex k = 0; k <= c.num_events(p0); ++k)
      truth.push_back(rng.next_bool());
    out.push_back(local_table(p0, std::move(truth), "random-table"));
  }
  // Conjunctive / disjunctive over every process.
  {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < n; ++i) ls.push_back(var_cmp(i, va, Cmp::kLe, 3));
    out.push_back(make_conjunctive(std::move(ls)));
  }
  {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < n; ++i) ls.push_back(var_cmp(i, vb, Cmp::kGe, 2));
    out.push_back(make_disjunctive(std::move(ls)));
  }
  // Boolean junctions (JunctionCursor / NotCursor over child cursors).
  out.push_back(make_and(var_cmp(p0, va, Cmp::kGe, 1),
                         channel_bound_le(p0, p1, 2)));
  out.push_back(make_or(make_not(var_cmp(pl, va, Cmp::kGe, 2)),
                        pos_cmp(p0, Cmp::kGe, 1)));
  // Relational sums and differences.
  out.push_back(sum_le({{p0, va}, {pl, vb}}, 4));
  out.push_back(sum_ge({{p0, va}, {p1, va}}, 2));
  out.push_back(diff_le({p0, va}, {pl, vb}, 1));
  // Channels.
  out.push_back(channel_bound_le(p0, p1, 1));
  out.push_back(channel_bound_ge(p1, p0, 1));
  out.push_back(all_channels_empty());
  // Opaque cut predicate: exercises the ScratchEvalCursor fallback.
  out.push_back(make_asserted(
      [](const Computation&, const Cut& g) { return g.total() % 3 != 1; },
      kClassObserverIndependent, "total-mod-gadget"));
  return out;
}

/// Random consistent walk over the cut lattice with single-component
/// advances/retreats and occasional multi-component J(e)-join seeks (the
/// A2-style jump, transiently inconsistent mid-seek). At every rest point
/// each cursor must agree with a scratch eval().
TEST(IncrementalEval, CursorMatchesScratchOnRandomWalks) {
  for (std::uint64_t seed = 1; seed <= 41; ++seed) {
    for (std::size_t kind = 0; kind < kNumWorkloads; ++kind) {
      const Computation c = workload_comp(kind, seed);
      const std::size_t n = sz(c.num_procs());
      Rng rng(seed * 1000 + kind);
      const std::vector<PredicatePtr> preds = predicate_battery(c, rng);

      Cut g = c.initial_cut();
      std::vector<EvalCursorPtr> cursors;
      for (const auto& p : preds) cursors.push_back(p->make_cursor(c, g));

      auto check_all = [&]() {
        ASSERT_TRUE(c.is_consistent(g));
        for (std::size_t k = 0; k < preds.size(); ++k)
          ASSERT_EQ(cursors[k]->value(), preds[k]->eval(c, g))
              << "seed=" << seed << " kind=" << kind << " pred "
              << preds[k]->describe() << " at cut " << g.to_string();
      };
      check_all();

      std::vector<ProcId> procs;
      Cut target = g;
      for (int step = 0; step < 220; ++step) {
        const std::uint64_t roll = rng.next_below(10);
        if (roll < 1) {
          // Seek to join(g, J(e)) for a random event e: a multi-component
          // jump during which the cut is transiently inconsistent.
          const ProcId i = static_cast<ProcId>(rng.next_below(c.num_procs()));
          if (c.num_events(i) == 0) continue;
          const EventIndex k = static_cast<EventIndex>(
              1 + rng.next_below(static_cast<std::uint64_t>(c.num_events(i))));
          c.join_irreducible_of(i, k, &target);
          for (std::size_t j = 0; j < n; ++j) {
            if (target[j] <= g[j]) continue;
            const EventIndex old = g[j];
            g[j] = target[j];
            for (auto& cur : cursors)
              cur->on_update(static_cast<ProcId>(j), old);
          }
        } else if (roll < 6) {
          c.enabled_procs(g, &procs);
          if (procs.empty()) continue;
          const std::size_t j = sz(procs[rng.next_below(procs.size())]);
          const EventIndex old = g[j]++;
          for (auto& cur : cursors)
            cur->on_update(static_cast<ProcId>(j), old);
        } else {
          c.frontier_procs(g, &procs);
          if (procs.empty()) continue;
          const std::size_t j = sz(procs[rng.next_below(procs.size())]);
          const EventIndex old = g[j]--;
          for (auto& cur : cursors)
            cur->on_update(static_cast<ProcId>(j), old);
        }
        check_all();
      }
    }
  }
}

/// Restores cursor evaluation even when an assertion fails mid-test.
struct CursorModeGuard {
  ~CursorModeGuard() { set_cursor_eval_enabled(true); }
};

void expect_same_result(const DetectResult& a, const DetectResult& b,
                        const char* what) {
  EXPECT_EQ(a.verdict, b.verdict) << what;
  EXPECT_EQ(a.bound, b.bound) << what;
  EXPECT_EQ(a.algorithm, b.algorithm) << what;
  EXPECT_EQ(a.witness_cut.has_value(), b.witness_cut.has_value()) << what;
  if (a.witness_cut && b.witness_cut)
    EXPECT_EQ(*a.witness_cut, *b.witness_cut) << what;
  EXPECT_EQ(a.witness_path, b.witness_path) << what;
  EXPECT_EQ(a.stats.predicate_evals, b.stats.predicate_evals) << what;
  EXPECT_EQ(a.stats.cut_steps, b.stats.cut_steps) << what;
}

class CursorModeParity : public ::testing::TestWithParam<std::uint64_t> {};

/// Every cursor-backed detector must be bit-identical to its scratch-backed
/// self: verdict, witness cut and path, evals and steps.
TEST_P(CursorModeParity, DetectorsMatchScratchMode) {
  CursorModeGuard guard;
  const std::uint64_t seed = GetParam();
  for (std::size_t kind = 0; kind < kNumWorkloads; ++kind) {
    const Computation c = workload_comp(kind, seed);
    const std::int32_t n = c.num_procs();
    const std::string va = c.var_name(0);

    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < n; ++i) ls.push_back(var_cmp(i, va, Cmp::kLe, 3));
    const auto conj = make_conjunctive(std::move(ls));
    const PredicatePtr chan = channel_bound_le(0, n > 1 ? 1 : 0, 1);
    const PredicatePtr lin = make_and(PredicatePtr(conj), chan);

    auto compare = [&](const char* what, auto&& run) {
      set_cursor_eval_enabled(true);
      const DetectResult inc = run();
      set_cursor_eval_enabled(false);
      const DetectResult scr = run();
      set_cursor_eval_enabled(true);
      expect_same_result(inc, scr, what);
      // The mode counters partition the evals of the walking detectors.
      EXPECT_EQ(inc.stats.eval_incremental + inc.stats.eval_fallback,
                inc.stats.predicate_evals)
          << what;
      EXPECT_EQ(scr.stats.eval_incremental, 0u) << what;
    };

    compare("eg-linear", [&] { return detect_eg_linear(c, *lin); });
    compare("eg-linear-randomized",
            [&] { return detect_eg_linear_randomized(c, *lin, seed); });
    compare("eg-post-linear", [&] { return detect_eg_post_linear(c, *lin); });
    compare("ag-linear", [&] { return detect_ag_linear(c, *lin); });
    compare("ag-post-linear", [&] { return detect_ag_post_linear(c, *lin); });
    compare("ef-linear", [&] { return detect_ef_linear(c, *conj); });
    compare("ef-post-linear", [&] { return detect_ef_post_linear(c, *conj); });
    compare("ef-oi",
            [&] { return detect_ef_observer_independent(c, *lin); });
    compare("eu", [&] { return detect_eu(c, *conj, *chan, 1); });

    // Budget-trip parity: the work budget must trip at the same point with
    // the same three-valued outcome in both modes.
    for (const std::uint64_t work : {3u, 9u, 27u}) {
      Budget b;
      b.max_work = work;
      compare("eg-linear (budget)",
              [&] { return detect_eg_linear(c, *lin, b); });
      compare("ag-linear (budget)",
              [&] { return detect_ag_linear(c, *lin, b); });
      compare("ef-linear (budget)",
              [&] { return detect_ef_linear(c, *conj, b); });
      compare("eu (budget)", [&] { return detect_eu(c, *conj, *chan, 1, b); });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CursorModeParity,
                         ::testing::Range<std::uint64_t>(1, 42));

/// detect_eg_conjunctive_within must be indistinguishable from running
/// detect_eg_conjunctive on the materialized prefix computation.
TEST(IncrementalEval, EgConjunctiveWithinMatchesPrefix) {
  for (std::uint64_t seed = 1; seed <= 41; ++seed) {
    const Computation c = workload_comp(seed % kNumWorkloads, seed);
    Rng rng(seed);
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < c.num_procs(); ++i)
      ls.push_back(var_cmp(i, c.var_name(0), Cmp::kLe, 3));
    const auto p = make_conjunctive(std::move(ls));

    // A random consistent prefix cut, reached by a short advance walk.
    Cut k = c.initial_cut();
    std::vector<ProcId> en;
    for (int step = 0; step < 10; ++step) {
      c.enabled_procs(k, &en);
      if (en.empty()) break;
      ++k[sz(en[rng.next_below(en.size())])];
    }

    const DetectResult fast = detect_eg_conjunctive_within(c, *p, k);
    const DetectResult slow = detect_eg_conjunctive(c.prefix(k), *p);
    expect_same_result(fast, slow, "eg-within");
  }
}

/// S1: the fused single-pass VClock comparison keeps the exact trichotomy —
/// for two distinct events exactly one of before / after / concurrent, and
/// before() agrees with the two-pass leq definition.
TEST(IncrementalEval, VectorClockTrichotomy) {
  for (std::uint64_t seed = 1; seed <= 41; ++seed) {
    const Computation c = workload_comp(seed % kNumWorkloads, seed);
    for (ProcId i = 0; i < c.num_procs(); ++i) {
      for (EventIndex k = 1; k <= c.num_events(i); ++k) {
        const VClockView a = c.vclock(i, k);
        EXPECT_FALSE(a.before(a));
        EXPECT_FALSE(a.concurrent(a));
        EXPECT_TRUE(a.leq(a));
        for (ProcId j = 0; j < c.num_procs(); ++j) {
          for (EventIndex l = 1; l <= c.num_events(j); ++l) {
            if (i == j && k == l) continue;
            const VClockView b = c.vclock(j, l);
            const int relations = static_cast<int>(a.before(b)) +
                                  static_cast<int>(b.before(a)) +
                                  static_cast<int>(a.concurrent(b));
            EXPECT_EQ(relations, 1)
                << "P" << i << "#" << k << " vs P" << j << "#" << l;
            EXPECT_EQ(a.before(b), a.leq(b) && !b.leq(a));
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace hbct
