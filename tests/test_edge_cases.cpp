// Edge cases across the stack: empty computations, single processes,
// degenerate predicates, dispatch identities, and the predicate-control
// schedule extraction.
#include <gtest/gtest.h>

#include "ctl/compile.h"
#include "detect/brute_force.h"
#include "detect/control.h"
#include "detect/dispatch.h"
#include "detect/until.h"
#include "lattice/lattice.h"
#include "poset/builder.h"
#include "poset/generate.h"
#include "poset/trace_io.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/relational.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

// ---- Empty / tiny computations ----------------------------------------------

TEST(EdgeCases, EmptyComputation) {
  ComputationBuilder b(3);
  Computation c = std::move(b).build();
  c.validate();
  EXPECT_EQ(c.total_events(), 0);
  EXPECT_EQ(c.initial_cut(), c.final_cut());

  Lattice lat = Lattice::build(c);
  EXPECT_EQ(lat.size(), 1u);
  EXPECT_EQ(lat.bottom(), lat.top());

  auto t = make_true();
  auto f = make_false();
  for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG}) {
    EXPECT_TRUE(detect(c, op, t).holds()) << to_string(op);
    EXPECT_FALSE(detect(c, op, f).holds()) << to_string(op);
  }
  // EU/AU at the single state: verdict is q(∅).
  EXPECT_TRUE(detect(c, Op::kEU, f, t).holds());
  EXPECT_FALSE(detect(c, Op::kEU, t, f).holds());
  EXPECT_TRUE(detect(c, Op::kAU, f, t).holds());
}

TEST(EdgeCases, SingleProcessIsATotalOrder) {
  ComputationBuilder b(1);
  VarId x = b.var("x");
  for (int k = 1; k <= 5; ++k) {
    b.internal(0);
    b.write(0, x, k);
  }
  Computation c = std::move(b).build();
  Lattice lat = Lattice::build(c);
  EXPECT_EQ(lat.size(), 6u);

  // On a chain, EF == AF and EG == AG for every predicate.
  LatticeChecker chk(c);
  auto p = var_cmp(0, "x", Cmp::kEq, 3);
  EXPECT_EQ(chk.detect(Op::kEF, *p).holds(), chk.detect(Op::kAF, *p).holds());
  EXPECT_EQ(chk.detect(Op::kEG, *p).holds(), chk.detect(Op::kAG, *p).holds());
  EXPECT_TRUE(detect(c, Op::kEF, p).holds());
  EXPECT_TRUE(detect(c, Op::kAF, p).holds());
  EXPECT_FALSE(detect(c, Op::kAG, p).holds());
}

TEST(EdgeCases, ProcessWithZeroEvents) {
  ComputationBuilder b(2);
  b.internal(0);
  b.internal(0);
  Computation c = std::move(b).build();
  EXPECT_EQ(c.num_events(1), 0);
  auto p = make_conjunctive({progress_ge(1, 1)});
  EXPECT_FALSE(detect(c, Op::kEF, p).holds());
  auto zero = make_conjunctive({pos_cmp(1, Cmp::kEq, 0)});
  EXPECT_TRUE(detect(c, Op::kAG, PredicatePtr(zero)).holds());
}

// ---- Dispatch identities ------------------------------------------------------

class DispatchIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DispatchIdentity, UntilWithConstantsCollapses) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = GetParam();
  Computation c = generate_random(opt);

  auto p = make_conjunctive({var_cmp(0, "v0", Cmp::kGe, 3),
                             var_cmp(1, "v1", Cmp::kLe, 2)});
  // E[true U p] == EF(p); A[true U p] == AF(p). `true` is conjunctive and
  // disjunctive, p is both too (as needed per rule), so the polynomial
  // algorithms handle both sides.
  EXPECT_EQ(detect(c, Op::kEU, make_true(), p).holds(),
            detect(c, Op::kEF, p).holds());
  auto d = make_disjunctive({var_cmp(0, "v0", Cmp::kGe, 3),
                             var_cmp(2, "v1", Cmp::kLe, 2)});
  EXPECT_EQ(detect(c, Op::kAU, make_true(), d).holds(),
            detect(c, Op::kAF, d).holds());
  // E[p U false] and A[p U false] are false.
  EXPECT_FALSE(detect(c, Op::kEU, p, make_false()).holds());
  EXPECT_FALSE(detect(c, Op::kAU, d, make_false()).holds());
  // E[p U true] and A[p U true] are true (empty prefix).
  EXPECT_TRUE(detect(c, Op::kEU, p, make_true()).holds());
  EXPECT_TRUE(detect(c, Op::kAU, d, make_true()).holds());
}

TEST_P(DispatchIdentity, NegationDualities) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.seed = GetParam() + 40;
  Computation c = generate_random(opt);
  auto p = make_disjunctive({var_cmp(0, "v0", Cmp::kGe, 3),
                             var_cmp(1, "v1", Cmp::kLe, 2)});
  auto np = p->negate();  // conjunctive
  // AG(p) == !EF(!p), AF(p) == !EG(!p) — each side through its own
  // polynomial algorithm.
  EXPECT_EQ(detect(c, Op::kAG, p).holds(), !detect(c, Op::kEF, np).holds());
  EXPECT_EQ(detect(c, Op::kAF, p).holds(), !detect(c, Op::kEG, np).holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchIdentity,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- Predicate control -----------------------------------------------------------

TEST(Control, ScheduleIsAValidTotalOrder) {
  GenOptions opt;
  opt.num_procs = 4;
  opt.events_per_proc = 6;
  opt.seed = 5;
  Computation c = generate_random(opt);
  // Always-true linear predicate: every schedule works, but the extracted
  // one must still be a valid linear extension.
  PredicatePtr p = channel_bound_le(0, 1, 1 << 20);
  auto schedule = control_schedule(c, *p);
  ASSERT_EQ(schedule.size(), static_cast<std::size_t>(c.total_events()));
  Cut g = c.initial_cut();
  for (const EventId& e : schedule) {
    ASSERT_TRUE(c.enabled(g, e.proc)) << "schedule violates causality";
    g = c.advance(g, e.proc);
    EXPECT_EQ(g[static_cast<std::size_t>(e.proc)], e.index);
  }
  EXPECT_EQ(g, c.final_cut());
}

TEST(Control, ScheduleKeepsThePredicateTrue) {
  sim::Simulator s = sim::make_producer_consumer(6, 3);
  Computation c = std::move(s).run({});
  // Controllable: the buffer never exceeds 2 — a scheduler can enforce it
  // by alternating produce/consume (window 3 permits but never forces 3).
  PredicatePtr p = diff_le({0, "produced"}, {1, "consumed"}, 2);
  auto schedule = control_schedule(c, *p);
  if (schedule.empty()) {
    // Not controllable on this trace; then EG must be false.
    EXPECT_FALSE(detect(c, Op::kEG, p).holds());
    return;
  }
  Cut g = c.initial_cut();
  EXPECT_TRUE(p->eval(c, g));
  for (const EventId& e : schedule) {
    g = c.advance(g, e.proc);
    EXPECT_TRUE(p->eval(c, g));
  }
}

TEST(Control, RejectsMalformedPaths) {
  Computation c = generate_independent(2, 2);
  EXPECT_DEATH(schedule_from_path(c, {Cut({1, 0})}), "initial cut");
  EXPECT_DEATH(schedule_from_path(c, {Cut({0, 0}), Cut({2, 0})}),
               "one event");
}

// ---- Trace round trips for every workload ------------------------------------------

TEST(Workloads, AllTracesRoundTrip) {
  std::vector<sim::Simulator> sims;
  sims.push_back(sim::make_token_mutex(3, 2, true));
  sims.push_back(sim::make_ra_mutex(3, 1));
  sims.push_back(sim::make_leader_election(4));
  sims.push_back(sim::make_token_ring(3, 2));
  sims.push_back(sim::make_producer_consumer(5, 2));
  sims.push_back(sim::make_barrier(3, 2));
  sims.push_back(sim::make_random_mixer(3, 6, 2, 0.4));
  sims.push_back(sim::make_dining_philosophers(3, 1, true));
  sims.push_back(sim::make_two_phase_commit(3, 2, 0.3, false));
  sims.push_back(sim::make_chandy_lamport(3, 8, 3));
  sims.push_back(sim::make_alternating_bit(4, 0.5));
  std::uint64_t seed = 9;
  for (auto& s : sims) {
    sim::SimOptions o;
    o.seed = seed++;
    Computation c = std::move(s).run(o);
    c.validate();
    const std::string text = trace_to_string(c);
    auto parsed = trace_from_string(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(trace_to_string(parsed.computation), text);
  }
}

// ---- Degenerate predicates -----------------------------------------------------

TEST(EdgeCases, ChannelPredicateOnSilentChannel) {
  Computation c = generate_independent(3, 3);
  EXPECT_TRUE(detect(c, Op::kAG, channel_empty(0, 1)).holds());
  EXPECT_FALSE(detect(c, Op::kEF, channel_bound_ge(0, 1, 1)).holds());
}

TEST(EdgeCases, ImpossibleChannelBound) {
  Computation c = generate_independent(2, 2);
  // in_transit <= -1 is unsatisfiable.
  EXPECT_FALSE(detect(c, Op::kEF, channel_bound_le(0, 1, -1)).holds());
  EXPECT_TRUE(detect(c, Op::kAG, channel_bound_ge(0, 1, 0)).holds());
}

TEST(EdgeCases, QueryOnUnwrittenVariableUsesInitials) {
  ComputationBuilder b(2);
  VarId x = b.var("x");
  b.set_initial(0, x, 42);
  b.internal(0);
  b.internal(1);
  Computation c = std::move(b).build();
  auto r = ctl::evaluate_query(c, "AG(x@P0 == 42)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.result.holds());
  auto r2 = ctl::evaluate_query(c, "AG(x@P1 == 0)");
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(r2.result.holds());
}

}  // namespace
}  // namespace hbct
