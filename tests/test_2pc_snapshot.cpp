// Tests for the two-phase-commit and Chandy–Lamport workloads: agreement
// and validity as detected predicates, and the snapshot-consistency theorem
// verified against the library's own cut machinery.
#include <gtest/gtest.h>

#include "detect/dispatch.h"
#include "predicate/conjunctive.h"
#include <unordered_map>

#include "poset/builder.h"
#include "sim/workloads.h"

namespace hbct {
namespace {

// ---- Two-phase commit ----------------------------------------------------------

constexpr std::int32_t kN = 4;       // coordinator + 3 participants
constexpr std::int32_t kTxns = 3;

Computation run_2pc(std::uint64_t seed, double p_no, bool bug) {
  sim::SimOptions o;
  o.seed = seed;
  sim::Simulator s = sim::make_two_phase_commit(kN, kTxns, p_no, bug);
  return std::move(s).run(o);
}

class TwoPhaseCommit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoPhaseCommit, AgreementAcrossParticipants) {
  Computation c = run_2pc(GetParam(), 0.3, false);
  c.validate();
  // No cut may show two participants with opposite outcomes for the SAME
  // transaction.
  for (std::int64_t t = 1; t <= kTxns; ++t) {
    for (ProcId i = 1; i < kN; ++i)
      for (ProcId j = 1; j < kN; ++j) {
        if (i == j) continue;
        auto split = make_conjunctive({var_cmp(i, "outcome", Cmp::kEq, 1),
                                       var_cmp(i, "dtxn", Cmp::kEq, t),
                                       var_cmp(j, "outcome", Cmp::kEq, -1),
                                       var_cmp(j, "dtxn", Cmp::kEq, t)});
        EXPECT_FALSE(detect(c, Op::kEF, split).holds())
            << "txn " << t << " split between P" << i << " and P" << j;
      }
  }
  // Every observation ends with everyone decided on the last transaction.
  std::vector<LocalPredicatePtr> done;
  for (ProcId i = 1; i < kN; ++i) {
    done.push_back(var_cmp(i, "decided", Cmp::kEq, 1));
    done.push_back(var_cmp(i, "dtxn", Cmp::kEq, kTxns));
  }
  EXPECT_TRUE(detect(c, Op::kAF, make_conjunctive(done)).holds());
}

TEST_P(TwoPhaseCommit, ValidityHoldsWithoutTheBug) {
  Computation c = run_2pc(GetParam(), 0.4, false);
  // "Committed a transaction it voted no on" must be unreachable.
  for (ProcId i = 1; i < kN; ++i) {
    auto bad = make_conjunctive({var_cmp(i, "vote", Cmp::kEq, 0),
                                 var_cmp(i, "outcome", Cmp::kEq, 1),
                                 var_cmp(i, "decided", Cmp::kEq, 1)});
    EXPECT_FALSE(detect(c, Op::kEF, bad).holds()) << "P" << i;
  }
}

TEST_P(TwoPhaseCommit, InjectedBugIsDetectedWhenTriggered) {
  // With a high no-vote rate the dropped vote almost surely matters; the
  // run is deterministic per seed, so detect the violation exactly when a
  // rejected transaction committed.
  Computation c = run_2pc(GetParam() + 1000, 0.5, true);
  bool violation = false;
  for (ProcId i = 1; i < kN; ++i) {
    auto bad = make_conjunctive({var_cmp(i, "vote", Cmp::kEq, 0),
                                 var_cmp(i, "outcome", Cmp::kEq, 1),
                                 var_cmp(i, "decided", Cmp::kEq, 1)});
    violation |= detect(c, Op::kEF, bad).holds();
  }
  // Ground truth from the trace: was some commit issued while a
  // participant's current vote was no? Recompute from events.
  bool ground = false;
  for (ProcId i = 1; i < kN; ++i) {
    const VarId vote = *c.var_id("vote");
    const VarId outcome = *c.var_id("outcome");
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      ground |= c.value_at(i, vote, k) == 0 && c.value_at(i, outcome, k) == 1;
  }
  EXPECT_EQ(violation, ground);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoPhaseCommit,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- Chandy–Lamport snapshots ------------------------------------------------------

// The Chandy–Lamport theorem speaks about the *application-level*
// computation: the recorded states form a consistent cut of the execution
// with the marker machinery erased. This projection rebuilds the
// computation keeping application messages and turning marker receives
// into internal events (they carry the snapped/snap_x writes); marker
// sends vanish.
Computation strip_markers(const Computation& c) {
  ComputationBuilder b(c.num_procs());
  for (VarId v = 0; v < c.num_vars(); ++v) b.var(c.var_name(v));
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (VarId v = 0; v < c.num_vars(); ++v)
      b.set_initial(i, v, c.value_at(i, v, 0));

  // A message is a marker iff its receive event carries the "snapshot"
  // label or... markers are exactly the messages whose receive performed no
  // x-update; identify instead by send events with no writes that were
  // emitted by a snapshot-labeled scope. Simplest reliable rule for this
  // workload: work messages set x at the receiver; marker receives never
  // do. Classify per message id by inspecting the receive event.
  const VarId x = *c.var_id("x");
  std::unordered_map<MsgId, bool> is_work;
  for (const EventId& eid : c.linearization()) {
    const Event& ev = c.event(eid);
    if (ev.kind != EventKind::kReceive) continue;
    bool wrote_x = false;
    for (const Assignment& a : ev.writes) wrote_x |= a.var == x;
    is_work[ev.msg] = wrote_x;
  }

  std::unordered_map<MsgId, MsgId> msg_map;
  for (const EventId& eid : c.linearization()) {
    const Event& ev = c.event(eid);
    bool emitted = true;
    switch (ev.kind) {
      case EventKind::kInternal:
        b.internal(eid.proc);
        break;
      case EventKind::kSend: {
        auto it = is_work.find(ev.msg);
        const bool work = it != is_work.end() && it->second;
        if (work)
          msg_map[ev.msg] = b.send(eid.proc, ev.peer);
        else if (!ev.writes.empty() || !ev.label.empty())
          b.internal(eid.proc);  // keep annotated marker sends as internal
        else
          emitted = false;  // bare marker send: erased
        break;
      }
      case EventKind::kReceive: {
        if (is_work.at(ev.msg))
          b.receive(eid.proc, msg_map.at(ev.msg));
        else
          b.internal(eid.proc);  // marker receive becomes internal
        break;
      }
    }
    if (!emitted) continue;
    for (const Assignment& a : ev.writes)
      b.write(eid.proc, c.var_name(a.var), a.value);
    if (!ev.label.empty()) b.label(eid.proc, ev.label);
  }
  return std::move(b).build();
}

Cut snapshot_positions(const Computation& c) {
  Cut snap(static_cast<std::size_t>(c.num_procs()));
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      if (c.event(i, k).label == "snapshot")
        snap[static_cast<std::size_t>(i)] = k;
  return snap;
}

class Snapshot : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Snapshot, RecordedCutIsConsistentInTheAppComputation) {
  const std::int32_t n = 4;
  sim::SimOptions o;
  o.seed = GetParam();
  o.fifo = true;  // Chandy-Lamport requires FIFO channels
  sim::Simulator s = sim::make_chandy_lamport(n, 12, 5);
  Computation full = std::move(s).run(o);
  full.validate();

  Computation app = strip_markers(full);
  app.validate();
  const Cut snap = snapshot_positions(app);
  for (ProcId i = 0; i < n; ++i)
    ASSERT_GE(snap[static_cast<std::size_t>(i)], 1) << "P" << i;

  // The Chandy–Lamport theorem: the recorded states form a consistent cut
  // of the application-level computation.
  EXPECT_TRUE(app.is_consistent(snap)) << snap.to_string();

  // And the recorded values equal the live values at that cut.
  const VarId x = *app.var_id("x");
  const VarId snap_x = *app.var_id("snap_x");
  for (ProcId i = 0; i < n; ++i)
    EXPECT_EQ(app.value_in(i, x, snap),
              app.value_in(i, snap_x, app.final_cut()))
        << "P" << i;

  // "Snapshot taken everywhere" is a conjunctive condition; the detector
  // agrees it definitely happens — on the full computation too.
  std::vector<LocalPredicatePtr> all;
  for (ProcId i = 0; i < n; ++i)
    all.push_back(var_cmp(i, "snapped", Cmp::kEq, 1));
  EXPECT_TRUE(detect(full, Op::kAF, make_conjunctive(all)).holds());
}

TEST_P(Snapshot, SnapshotCutIsLeastAllSnappedCutOfAppComputation) {
  const std::int32_t n = 3;
  sim::SimOptions o;
  o.seed = GetParam() + 50;
  o.fifo = true;
  sim::Simulator s = sim::make_chandy_lamport(n, 10, 4);
  Computation app = strip_markers(std::move(s).run(o));

  std::vector<LocalPredicatePtr> all;
  for (ProcId i = 0; i < n; ++i)
    all.push_back(var_cmp(i, "snapped", Cmp::kEq, 1));
  DetectResult r = detect(app, Op::kEF, make_conjunctive(all));
  ASSERT_TRUE(r.holds());

  // snapped first becomes true at the snapshot events, and the snapshot
  // cut is consistent (previous test), so it is exactly the least
  // satisfying cut the detector reports.
  EXPECT_EQ(*r.witness_cut, snapshot_positions(app));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Snapshot,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace hbct
