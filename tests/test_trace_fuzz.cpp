// Trace reader robustness: seeded byte-level mutations of valid traces must
// never crash the parser — every input either parses or reports a non-empty
// error — and the unmutated round-trip stays intact throughout.
#include <gtest/gtest.h>

#include <string>

#include "poset/generate.h"
#include "poset/trace_io.h"
#include "util/rng.h"

namespace hbct {
namespace {

Computation random_comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.p_recv = 0.35;
  opt.seed = seed;
  return generate_random(opt);
}

/// Applies one random substitution, insertion, or deletion at a random
/// offset. The alphabet skews toward bytes the grammar cares about so
/// mutations hit field boundaries, not just free text.
std::string mutate(Rng& rng, std::string s) {
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 \t\n-=#.procsvinitend\xff\x00";
  const auto pick = [&] {
    return alphabet[rng.next_below(sizeof(alphabet) - 1)];
  };
  if (s.empty()) return std::string(1, pick());
  const std::size_t at = rng.next_below(s.size());
  switch (rng.next_below(3)) {
    case 0:
      s[at] = pick();
      break;
    case 1:
      s.insert(s.begin() + static_cast<std::ptrdiff_t>(at), pick());
      break;
    default:
      s.erase(s.begin() + static_cast<std::ptrdiff_t>(at));
      break;
  }
  return s;
}

class TraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, MutatedTracesNeverCrash) {
  Rng rng(GetParam() * 41 + 3);
  const Computation c = random_comp(GetParam());
  const std::string valid = trace_to_string(c);

  // Sanity: the unmutated text round-trips.
  TraceParseResult base = trace_from_string(valid);
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_EQ(trace_to_string(base.computation), valid);

  for (int round = 0; round < 200; ++round) {
    // 1..8 stacked mutations: single byte flips and small pile-ups.
    std::string text = valid;
    const std::size_t n = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) text = mutate(rng, text);

    const TraceParseResult r = trace_from_string(text);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "round " << round;
    } else {
      // Whatever still parses must serialize and re-parse to the identical
      // computation (print∘parse is a fixpoint after one iteration).
      const std::string printed = trace_to_string(r.computation);
      const TraceParseResult r2 = trace_from_string(printed);
      ASSERT_TRUE(r2.ok) << "reprint failed: " << r2.error;
      EXPECT_EQ(trace_to_string(r2.computation), printed);
    }
  }
}

TEST(TraceFuzz, TruncationsAtEveryPrefixAreHandled) {
  const Computation c = random_comp(99);
  const std::string valid = trace_to_string(c);
  // Every prefix either parses (trailing records dropped legally would be a
  // format change — today only the full text has the `end` marker) or
  // reports an error; it must never crash.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const TraceParseResult r = trace_from_string(valid.substr(0, len));
    if (!r.ok) EXPECT_FALSE(r.error.empty()) << "prefix " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace hbct
