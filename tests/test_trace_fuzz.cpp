// Trace reader robustness: seeded byte-level mutations of valid traces must
// never crash the parser — every input either parses or reports a non-empty
// error — and the unmutated round-trip stays intact throughout.
#include <gtest/gtest.h>

#include <string>

#include "poset/generate.h"
#include "poset/mtrace.h"
#include "poset/trace_io.h"
#include "util/rng.h"

namespace hbct {
namespace {

Computation random_comp(std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = 4;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.p_recv = 0.35;
  opt.seed = seed;
  return generate_random(opt);
}

/// Applies one random substitution, insertion, or deletion at a random
/// offset. The alphabet skews toward bytes the grammar cares about so
/// mutations hit field boundaries, not just free text.
std::string mutate(Rng& rng, std::string s) {
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 \t\n-=#.procsvinitend\xff\x00";
  const auto pick = [&] {
    return alphabet[rng.next_below(sizeof(alphabet) - 1)];
  };
  if (s.empty()) return std::string(1, pick());
  const std::size_t at = rng.next_below(s.size());
  switch (rng.next_below(3)) {
    case 0:
      s[at] = pick();
      break;
    case 1:
      s.insert(s.begin() + static_cast<std::ptrdiff_t>(at), pick());
      break;
    default:
      s.erase(s.begin() + static_cast<std::ptrdiff_t>(at));
      break;
  }
  return s;
}

class TraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, MutatedTracesNeverCrash) {
  Rng rng(GetParam() * 41 + 3);
  const Computation c = random_comp(GetParam());
  const std::string valid = trace_to_string(c);

  // Sanity: the unmutated text round-trips.
  TraceParseResult base = trace_from_string(valid);
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_EQ(trace_to_string(base.computation), valid);

  for (int round = 0; round < 200; ++round) {
    // 1..8 stacked mutations: single byte flips and small pile-ups.
    std::string text = valid;
    const std::size_t n = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) text = mutate(rng, text);

    const TraceParseResult r = trace_from_string(text);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "round " << round;
    } else {
      // Whatever still parses must serialize and re-parse to the identical
      // computation (print∘parse is a fixpoint after one iteration).
      const std::string printed = trace_to_string(r.computation);
      const TraceParseResult r2 = trace_from_string(printed);
      ASSERT_TRUE(r2.ok) << "reprint failed: " << r2.error;
      EXPECT_EQ(trace_to_string(r2.computation), printed);
    }
  }
}

TEST(TraceFuzz, TruncationsAtEveryPrefixAreHandled) {
  const Computation c = random_comp(99);
  const std::string valid = trace_to_string(c);
  // Every prefix either parses (trailing records dropped legally would be a
  // format change — today only the full text has the `end` marker) or
  // reports an error; it must never crash.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const TraceParseResult r = trace_from_string(valid.substr(0, len));
    if (!r.ok) EXPECT_FALSE(r.error.empty()) << "prefix " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- Binary form ---------------------------------------------------------------

/// Byte-level mutation for the binary form: uniform random bytes (the
/// binary grammar has no free text to skew toward — every byte matters).
std::string mutate_binary(Rng& rng, std::string s) {
  const auto pick = [&] {
    return static_cast<char>(rng.next_below(256));
  };
  if (s.empty()) return std::string(1, pick());
  const std::size_t at = rng.next_below(s.size());
  switch (rng.next_below(3)) {
    case 0:
      s[at] = pick();
      break;
    case 1:
      s.insert(s.begin() + static_cast<std::ptrdiff_t>(at), pick());
      break;
    default:
      s.erase(s.begin() + static_cast<std::ptrdiff_t>(at));
      break;
  }
  return s;
}

class BinaryTraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryTraceFuzz, MutatedBinaryTracesNeverCrash) {
  Rng rng(GetParam() * 53 + 11);
  const Computation c = random_comp(GetParam());
  const std::string valid = trace_to_binary_string(c);

  // Sanity: the unmutated bytes round-trip to the identical computation.
  TraceParseResult base = trace_from_binary_string(valid);
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_EQ(trace_to_binary_string(base.computation), valid);
  EXPECT_EQ(trace_to_string(base.computation), trace_to_string(c));

  for (int round = 0; round < 200; ++round) {
    std::string bytes = valid;
    const std::size_t n = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) bytes = mutate_binary(rng, bytes);

    const TraceParseResult r = trace_from_binary_string(bytes);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "round " << round;
    } else {
      const std::string printed = trace_to_binary_string(r.computation);
      const TraceParseResult r2 = trace_from_binary_string(printed);
      ASSERT_TRUE(r2.ok) << "reprint failed: " << r2.error;
      EXPECT_EQ(trace_to_binary_string(r2.computation), printed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryTraceFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(BinaryTraceFuzz, TruncationsAtEveryPrefixAreErrors) {
  const Computation c = random_comp(99);
  const std::string valid = trace_to_binary_string(c);
  // The binary grammar requires a complete `end` record, so every strict
  // prefix — including ones cutting a length prefix or varint mid-byte —
  // must report an error, never crash, never return a computation.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const TraceParseResult r =
        trace_from_binary_string(std::string_view(valid).substr(0, len));
    EXPECT_FALSE(r.ok) << "prefix " << len;
    EXPECT_FALSE(r.error.empty()) << "prefix " << len;
  }
}

TEST(BinaryTraceFuzz, HandCraftedMalformedRecords) {
  const auto parse_records = [](const std::vector<std::string>& payloads) {
    std::string bytes(wire::kBinaryMagic);
    for (const std::string& p : payloads) {
      wire::put_varint(bytes, p.size());
      bytes += p;
    }
    return trace_from_binary_string(bytes);
  };
  const auto rec = [](const wire::Record& r) {
    std::string s;
    wire::encode_record(s, r);
    return s;
  };
  wire::Record procs;
  procs.kind = wire::Record::Kind::kProcs;
  procs.nprocs = 2;
  wire::Record send;
  send.kind = wire::Record::Kind::kSend;
  send.proc = 0;
  send.peer = 1;
  send.msg = 5;
  wire::Record end;
  end.kind = wire::Record::Kind::kEnd;

  // Duplicate message ids are a clean parse error.
  {
    std::string bytes(wire::kBinaryMagic);
    bytes += rec(procs) + rec(send) + rec(send) + rec(end);
    const TraceParseResult r = trace_from_binary_string(bytes);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("duplicate"), std::string::npos) << r.error;
  }
  // An 11-byte varint inside a payload can never be valid.
  {
    std::string payload(1, '\x01');  // kProcs
    payload += std::string(11, '\xff');
    const TraceParseResult r = parse_records({payload});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("varint"), std::string::npos) << r.error;
  }
  // A declared record length beyond the cap is rejected up front.
  {
    std::string bytes(wire::kBinaryMagic);
    wire::put_varint(bytes, wire::kMaxRecordBytes + 1);
    const TraceParseResult r = trace_from_binary_string(bytes);
    EXPECT_FALSE(r.ok);
  }
  // Trailing payload bytes after the known fields are rejected.
  {
    const TraceParseResult r = parse_records({std::string("\x07junk", 5)});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("trailing"), std::string::npos) << r.error;
  }
  // Bytes after the end record are rejected.
  {
    std::string bytes(wire::kBinaryMagic);
    bytes += rec(procs) + rec(end);
    bytes.push_back('\x00');
    const TraceParseResult r = trace_from_binary_string(bytes);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("after"), std::string::npos) << r.error;
  }
}

// ---- mtrace (mmap form) -----------------------------------------------------
//
// The mtrace loader is the memory-safety boundary of the zero-copy path:
// whatever it accepts is later dereferenced WITHOUT bounds checks by the
// arena views and the detectors. Every failure must be a typed
// MtraceError with a message — never a crash, never an unvalidated
// computation.

class MtraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MtraceFuzz, MutatedMtraceBytesNeverCrash) {
  Rng rng(GetParam() * 67 + 29);
  const Computation c = random_comp(GetParam());
  const std::string valid = mtrace_to_string(c);

  // Sanity: the unmutated bytes round-trip byte-identically.
  MtraceLoadResult base = mtrace_from_bytes(valid);
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_EQ(mtrace_to_string(base.computation), valid);

  for (int round = 0; round < 300; ++round) {
    std::string bytes = valid;
    const std::size_t n = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) bytes = mutate_binary(rng, bytes);

    const MtraceLoadResult r = mtrace_from_bytes(bytes);
    if (!r.ok) {
      EXPECT_NE(r.code, MtraceError::kNone) << "round " << round;
      EXPECT_FALSE(r.error.empty()) << "round " << round;
    } else {
      // Anything accepted must re-serialize to a loadable fixpoint.
      const std::string printed = mtrace_to_string(r.computation);
      const MtraceLoadResult r2 = mtrace_from_bytes(printed);
      ASSERT_TRUE(r2.ok) << "reprint failed: " << r2.error;
      EXPECT_EQ(mtrace_to_string(r2.computation), printed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MtraceFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(MtraceFuzz, TruncationsAtEveryPrefixAreTypedErrors) {
  const Computation c = random_comp(41);
  const std::string valid = mtrace_to_string(c);
  // Section offsets are absolute, so every strict prefix loses at least
  // the linearization tail: all of them must fail with a typed error.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const MtraceLoadResult r =
        mtrace_from_bytes(std::string_view(valid).substr(0, len));
    EXPECT_FALSE(r.ok) << "prefix " << len;
    EXPECT_NE(r.code, MtraceError::kNone) << "prefix " << len;
    EXPECT_FALSE(r.error.empty()) << "prefix " << len;
  }
}

TEST(MtraceFuzz, CraftedHeadersReportTheRightError) {
  const Computation c = random_comp(42);
  const std::string valid = mtrace_to_string(c);

  const auto load_with = [&](std::size_t at, char v) {
    std::string bytes = valid;
    bytes[at] = v;
    return mtrace_from_bytes(bytes);
  };

  // Shorter than one header.
  {
    const MtraceLoadResult r =
        mtrace_from_bytes(std::string_view(valid).substr(0, 63));
    EXPECT_EQ(r.code, MtraceError::kTruncated);
  }
  // Magic damage.
  EXPECT_EQ(load_with(0, 'X').code, MtraceError::kBadMagic);
  // Unsupported version (offset 8: u32 version).
  EXPECT_EQ(load_with(8, '\x7f').code, MtraceError::kBadHeader);
  // nprocs out of range (offset 16: i32 nprocs; 0x80 in the high byte
  // makes it negative).
  EXPECT_EQ(load_with(19, '\x80').code, MtraceError::kBadHeader);
  // Section-table damage trips the checksum before any section is read
  // (offset 64 is the first table entry's id).
  EXPECT_EQ(load_with(64, '\x7e').code, MtraceError::kBadChecksum);

  // Every single-byte corruption anywhere in the file either fails with a
  // typed error or round-trips; exhaustive over the whole (small) file.
  for (std::size_t at = 0; at < valid.size(); ++at) {
    std::string bytes = valid;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x2a);
    const MtraceLoadResult r = mtrace_from_bytes(bytes);
    if (!r.ok) {
      EXPECT_NE(r.code, MtraceError::kNone) << "offset " << at;
      EXPECT_FALSE(r.error.empty()) << "offset " << at;
    }
  }
}

}  // namespace
}  // namespace hbct
