// Fig. 3 reproduction: the hardness gadgets in practice.
//
// Sweeps the number of boolean variables m and measures the exponential
// search the Theorem 5/6 problems force, with DPLL as the (also
// exponential, but pruned) comparison point. Unsatisfiable inputs are the
// worst case for EG: the search must cover the whole assignment hypercube.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

/// x0 & !x0 plus padding vars: UNSAT, maximal search space.
Cnf unsat_padded(std::int32_t m) {
  Cnf f;
  f.num_vars = m;
  f.clauses = {{{{0, false}}}, {{{0, true}}}};
  return f;
}

/// A DNF tautology over m vars: (x0) | (!x0) padded.
Dnf taut_padded(std::int32_t m) {
  Dnf f;
  f.num_vars = m;
  f.terms = {{{{0, false}}}, {{{0, true}}}};
  return f;
}

void BM_eg_oi_unsat(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  Reduction r = reduce_sat_to_eg(unsat_padded(m));
  DetectResult last;
  for (auto _ : state) last = detect_eg_dfs(r.computation, *r.predicate);
  state.counters["cut_steps"] = static_cast<double>(last.stats.cut_steps);
  state.SetLabel(last.holds() ? "SAT (bug!)" : "UNSAT");
}
BENCHMARK(BM_eg_oi_unsat)->DenseRange(4, 16, 2);

void BM_ag_oi_tautology(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  Reduction r = reduce_tautology_to_ag(taut_padded(m));
  DetectResult last;
  for (auto _ : state) last = detect_ag_dfs(r.computation, *r.predicate);
  state.counters["cut_steps"] = static_cast<double>(last.stats.cut_steps);
  state.SetLabel(last.holds() ? "tautology" : "refutable (bug!)");
}
BENCHMARK(BM_ag_oi_tautology)->DenseRange(4, 16, 2);

void BM_eg_oi_random3sat(benchmark::State& state) {
  // Near the 3-SAT phase transition (clauses ≈ 4.26 m): hard instances.
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  Rng rng(static_cast<std::uint64_t>(m) * 31 + 5);
  Cnf f = Cnf::random(m, static_cast<std::int32_t>(m * 4.26), 3, rng);
  Reduction r = reduce_sat_to_eg(f);
  DetectResult last;
  for (auto _ : state) last = detect_eg_dfs(r.computation, *r.predicate);
  state.counters["cut_steps"] = static_cast<double>(last.stats.cut_steps);
  state.SetLabel(last.holds() ? "SAT" : "UNSAT");
}
BENCHMARK(BM_eg_oi_random3sat)->DenseRange(4, 14, 2);

void BM_dpll_random3sat(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  Rng rng(static_cast<std::uint64_t>(m) * 31 + 5);
  Cnf f = Cnf::random(m, static_cast<std::int32_t>(m * 4.26), 3, rng);
  DpllStats ds;
  bool sat = false;
  for (auto _ : state) {
    sat = dpll_solve(f, &ds).has_value();
    benchmark::DoNotOptimize(sat);
  }
  state.counters["decisions"] = static_cast<double>(ds.decisions);
  state.SetLabel(sat ? "SAT" : "UNSAT");
}
BENCHMARK(BM_dpll_random3sat)->DenseRange(4, 14, 2);

// In contrast: the same operator on a *disjunctive* OI predicate stays
// polynomial (Table 1's point that subclasses escape the hardness).
void BM_eg_disjunctive_same_scale(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  Computation c = generate_independent(m + 1, 2);
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i <= m; ++i) ls.push_back(progress_ge(i, 0));  // true
  auto p = make_disjunctive(std::move(ls));
  DetectResult last;
  for (auto _ : state) last = detect_eg_disjunctive(c, *p);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
}
BENCHMARK(BM_eg_disjunctive_same_scale)->DenseRange(4, 16, 2);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
