// Watch throughput under mixed watch classes: watches/sec the streaming
// service sustains per class — conjunctive, disjunctive, invariant, stable,
// channel, relational (both riding watch_stable with predicates that are
// stable by construction on the generated stream), and until — at a fixed
// fire-latency objective, plus a recorder-on vs recorder-off A/B pair
// measuring the always-on flight recorder's gating overhead.
//
// The BENCH_watch.json artifact (schema hbct.bench/1) extends each row with
// a "watch" object validated by tools/check_report.py and diffed by
// tools/bench_diff.py in CI.
//
// Stream shape (2 processes): round r sends msg r from P0 (writing x = r)
// and, once r >= lag, delivers msg r - lag to P1 (writing y = r - lag). The
// channel 0->1 therefore holds ~lag messages from warmup onwards and never
// drains — channel_bound_ge(0,1,lag) is stable on this stream — and x, y
// are monotone nondecreasing, so sum_ge is stable too. Each class arms one
// watch that fires mid-stream (latency samples) and several that never fire
// (sustained evaluation cost).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "obs/expose.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/predicate.h"
#include "predicate/relational.h"
#include "serve/service.h"
#include "util/assert.h"

namespace hbct {
namespace {

using serve::SessionConfig;
using serve::SessionId;
using serve::SessionState;
using serve::StreamingService;

constexpr std::int64_t kLag = 64;  // in-flight messages after warmup

struct WatchPlan {
  std::string cls;        // row label; "mixed" = one of each
  int sessions = 4;
  std::int64_t rounds = 4'000;
  bool recorder = true;   // flight recorder enabled during the pass
};

struct WatchOutcome {
  std::int64_t events = 0;
  std::int64_t watches = 0;
  std::int64_t fires = 0;
  std::uint64_t fire_p50_ns = 0;
  std::uint64_t fire_p99_ns = 0;
};

std::vector<std::string> build_chunks(std::int64_t rounds) {
  std::vector<std::string> chunks;
  {
    wire::Record procs;
    procs.kind = wire::Record::Kind::kProcs;
    procs.nprocs = 2;
    wire::Record var;
    var.kind = wire::Record::Kind::kVar;
    var.name = "x";
    wire::Record var2;
    var2.kind = wire::Record::Kind::kVar;
    var2.name = "y";
    std::string head;
    wire::encode_record(head, procs);
    wire::encode_record(head, var);
    wire::encode_record(head, var2);
    // Initial values so relational sums read defined state everywhere.
    wire::Record init;
    init.kind = wire::Record::Kind::kInit;
    init.proc = 0;
    init.var = 0;
    init.value = 0;
    wire::encode_record(head, init);
    init.proc = 1;
    init.var = 1;
    wire::encode_record(head, init);
    chunks.push_back(std::move(head));
  }
  std::string chunk;
  for (std::int64_t r = 0; r < rounds; ++r) {
    wire::Record send;
    send.kind = wire::Record::Kind::kSend;
    send.proc = 0;
    send.peer = 1;
    send.msg = static_cast<std::uint64_t>(r);
    send.writes.push_back({0, r});  // x = r
    wire::encode_record(chunk, send);
    if (r >= kLag) {
      wire::Record recv;
      recv.kind = wire::Record::Kind::kRecv;
      recv.proc = 1;
      recv.msg = static_cast<std::uint64_t>(r - kLag);
      recv.writes.push_back({1, r - kLag});  // y = r - lag
      wire::encode_record(chunk, recv);
    }
    if (r % 512 == 511) chunks.push_back(std::exchange(chunk, {}));
  }
  {
    // The last kLag messages stay in flight on purpose: the channel never
    // drains, keeping channel_bound_ge stable through the end of stream.
    wire::Record end;
    end.kind = wire::Record::Kind::kEnd;
    wire::encode_record(chunk, end);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

/// Registers the watches of one class on a fresh monitor; returns how many
/// were armed. `target` is the mid-stream firing threshold.
std::int64_t arm(OnlineMonitor& m, const std::string& cls,
                 std::int64_t rounds) {
  const std::int64_t target = rounds / 2;
  const auto xv = [&](Cmp op, std::int64_t k) {
    return var_cmp(0, "x", op, k);
  };
  const auto yv = [&](Cmp op, std::int64_t k) {
    return var_cmp(1, "y", op, k);
  };
  if (cls == "conjunctive") {
    m.watch_possibly(
        make_conjunctive({xv(Cmp::kEq, target), yv(Cmp::kEq, target)}));
    m.watch_possibly(make_conjunctive({xv(Cmp::kLt, 0), yv(Cmp::kLt, 0)}));
    m.watch_possibly(make_conjunctive({xv(Cmp::kEq, -1), yv(Cmp::kEq, -2)}));
    return 3;
  }
  if (cls == "disjunctive") {
    m.watch_possibly(
        make_disjunctive({xv(Cmp::kEq, target), yv(Cmp::kEq, target)}));
    m.watch_possibly(make_disjunctive({xv(Cmp::kLt, 0), yv(Cmp::kLt, 0)}));
    m.watch_possibly(make_disjunctive({xv(Cmp::kEq, -1), yv(Cmp::kEq, -2)}));
    return 3;
  }
  if (cls == "invariant") {
    // AG(x < target or y < target): violated mid-stream once both advance.
    m.watch_invariant(
        make_disjunctive({xv(Cmp::kLt, target), yv(Cmp::kLt, target)}));
    m.watch_invariant(make_disjunctive({xv(Cmp::kGe, 0), yv(Cmp::kGe, -1)}));
    return 2;
  }
  if (cls == "stable") {
    const std::int64_t fire_at = rounds;  // ~half the stream's 2r - lag events
    m.watch_stable(make_stable(
        [fire_at](const Computation&, const Cut& g) {
          return g.total() >= fire_at;
        },
        "progress"));
    m.watch_stable(make_stable(
        [](const Computation&, const Cut&) { return false; }, "never"));
    return 2;
  }
  if (cls == "channel") {
    // Stable on this stream: occupancy of 0->1 reaches kLag at warmup and
    // never drops below it (the tail messages are never delivered).
    m.watch_stable(channel_bound_ge(0, 1, static_cast<std::int32_t>(kLag)));
    m.watch_stable(channel_bound_ge(0, 1, 1 << 30));
    return 2;
  }
  if (cls == "relational") {
    // x + y is monotone nondecreasing, so sum_ge is stable.
    m.watch_stable(sum_ge({{0, "x"}, {1, "y"}}, target));
    m.watch_stable(sum_ge({{0, "x"}, {1, "y"}}, std::int64_t{1} << 60));
    return 2;
  }
  if (cls == "until") {
    // E[x >= 0 U P1-progress]: streaming A3 decides once I_q is observed.
    m.watch_until(make_conjunctive({xv(Cmp::kGe, 0)}),
                  PredicatePtr(progress_ge(1, (rounds - kLag) / 2)));
    m.watch_until(make_conjunctive({xv(Cmp::kGe, 0)}),
                  PredicatePtr(progress_ge(1, rounds * 16)));
    return 2;
  }
  HBCT_ASSERT(cls == "mixed");
  std::int64_t n = 0;
  for (const char* c : {"conjunctive", "disjunctive", "invariant", "stable",
                        "channel", "relational", "until"})
    n += arm(m, c, rounds);
  return n;
}

void run_watches(const WatchPlan& plan, const std::vector<std::string>& chunks,
                 WatchOutcome* out) {
  FlightRecorder::global().set_enabled(plan.recorder);
  Tracer tracer;
  serve::ServiceOptions opt;
  opt.trace = &tracer;
  StreamingService svc(opt);

  SessionConfig cfg;
  cfg.num_procs = 2;
  std::int64_t watches = 0;
  std::vector<SessionId> sids;
  for (int k = 0; k < plan.sessions; ++k) {
    sids.push_back(svc.open(cfg, [&](OnlineMonitor& m) {
      m.var("x");
      m.var("y");
      watches += arm(m, plan.cls, plan.rounds);
    }));
  }
  for (const std::string& chunk : chunks)
    for (SessionId sid : sids) svc.post(sid, chunk);
  svc.drain();
  FlightRecorder::global().set_enabled(true);

  if (out != nullptr) {
    out->events = 0;
    out->fires = 0;
    out->watches = watches;
    for (SessionId sid : sids) {
      if (svc.state(sid) != SessionState::kFinished) {
        std::fprintf(stderr, "session failed: %s\n", svc.error(sid).c_str());
        std::abort();
      }
      const auto st = svc.stats(sid);
      out->events += st.events;
      out->fires += st.fires;
    }
    const MetricsSnapshot snap = tracer.metrics().snapshot();
    // Mixed rows read the combined fire-latency histogram; single-class
    // rows their class series (invariant/channel/relational label under
    // their WatchKind: invariant, stable, stable).
    std::string hname = "serve.fire_latency.ns";
    if (plan.cls == "conjunctive" || plan.cls == "disjunctive" ||
        plan.cls == "invariant" || plan.cls == "until")
      hname = labeled(hname, "class", plan.cls);
    else if (plan.cls != "mixed")
      hname = labeled(hname, "class", "stable");
    auto it = snap.histograms.find(hname);
    if (it != snap.histograms.end()) {
      out->fire_p50_ns = it->second.percentile(0.5);
      out->fire_p99_ns = it->second.percentile(0.99);
    }
  }
}

void BM_watch_class(benchmark::State& state, const char* cls) {
  WatchPlan plan;
  plan.cls = cls;
  const auto chunks = build_chunks(plan.rounds);
  for (auto _ : state) run_watches(plan, chunks, nullptr);
  state.SetItemsProcessed(state.iterations() * plan.sessions *
                          (2 * plan.rounds - kLag));
}
BENCHMARK_CAPTURE(BM_watch_class, conjunctive, "conjunctive");
BENCHMARK_CAPTURE(BM_watch_class, stable, "stable");
BENCHMARK_CAPTURE(BM_watch_class, mixed, "mixed");

// ---- BENCH_watch.json --------------------------------------------------------

struct WatchRow {
  benchio::BenchRow base;
  WatchPlan plan;
  WatchOutcome outcome;
};

/// Fire-latency objective every row is measured against: p99 of the class's
/// fire latency must sit under this for the row to report met_p99 = true.
constexpr std::uint64_t kP99TargetNs = 250'000;  // 250 us

bool emit_watch_json(const char* path) {
  struct Config {
    const char* name;
    const char* label;
    WatchPlan plan;
  };
  const Config configs[] = {
      {"watch/conjunctive", "4 sessions, conjunctive watches",
       {"conjunctive", 4, 4'000, true}},
      {"watch/disjunctive", "4 sessions, disjunctive watches",
       {"disjunctive", 4, 4'000, true}},
      {"watch/invariant", "4 sessions, invariant watches",
       {"invariant", 4, 4'000, true}},
      {"watch/stable", "4 sessions, stable watches",
       {"stable", 4, 4'000, true}},
      {"watch/channel", "4 sessions, channel watches (stable ride)",
       {"channel", 4, 4'000, true}},
      {"watch/relational", "4 sessions, relational watches (stable ride)",
       {"relational", 4, 4'000, true}},
      {"watch/until", "4 sessions, until watches",
       {"until", 4, 4'000, true}},
  };

  std::vector<WatchRow> rows;
  for (const Config& c : configs) {
    const auto chunks = build_chunks(c.plan.rounds);
    WatchRow row;
    row.base.name = c.name;
    row.base.label = c.label;
    row.plan = c.plan;
    row.base.ns =
        benchio::time_ns(7, [&] { run_watches(c.plan, chunks, &row.outcome); });
    rows.push_back(std::move(row));
  }

  // Recorder A/B: alternate recorder-on and recorder-off passes of the same
  // mixed workload so clock drift, allocator state, and thermal throttle
  // land on both sides equally — separate blocks showed run-to-run spread
  // an order of magnitude above the gating overhead being measured.
  {
    WatchPlan rec{"mixed", 4, 4'000, true};
    WatchPlan norec = rec;
    norec.recorder = false;
    const auto chunks = build_chunks(rec.rounds);
    WatchRow rrow, nrow;
    rrow.base.name = "watch/mixed/rec";
    rrow.base.label = "4 sessions, one of each class, recorder on";
    rrow.plan = rec;
    nrow.base.name = "watch/mixed/norec";
    nrow.base.label = "4 sessions, one of each class, recorder off";
    nrow.plan = norec;
    run_watches(rec, chunks, nullptr);  // warmup
    run_watches(norec, chunks, nullptr);
    std::vector<double> rec_ns, norec_ns;
    for (int i = 0; i < 15; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      run_watches(rec, chunks, &rrow.outcome);
      auto t1 = std::chrono::steady_clock::now();
      run_watches(norec, chunks, &nrow.outcome);
      auto t2 = std::chrono::steady_clock::now();
      rec_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      norec_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
              .count()));
    }
    rrow.base.ns = Summary::of(std::move(rec_ns));
    nrow.base.ns = Summary::of(std::move(norec_ns));
    rows.push_back(std::move(rrow));
    rows.push_back(std::move(nrow));
  }

  JsonWriter w;
  w.begin_object();
  w.kv("schema", benchio::kBenchSchema);
  w.kv("bench", "watch");
  w.key("rows").begin_array();
  for (const WatchRow& r : rows) {
    w.begin_object();
    w.kv("name", r.base.name);
    w.kv("label", r.base.label);
    w.kv("iters", static_cast<std::uint64_t>(r.base.ns.count));
    w.key("ns");
    benchio::write_summary(w, r.base.ns);
    w.key("report").raw("null");
    w.key("watch").begin_object();
    w.kv("class", r.plan.cls);
    w.kv("sessions", static_cast<std::uint64_t>(r.plan.sessions));
    w.kv("watches", static_cast<std::int64_t>(r.outcome.watches));
    w.kv("events", static_cast<std::int64_t>(r.outcome.events));
    // Nominal watch evaluations (every armed watch sees every event of its
    // session) over median wall time: the headline watches/sec figure.
    const double evals = static_cast<double>(r.outcome.watches) /
                         r.plan.sessions *
                         static_cast<double>(r.outcome.events);
    w.kv("watch_evals_per_sec",
         r.base.ns.median > 0 ? evals * 1e9 / r.base.ns.median : 0.0);
    w.kv("fires", static_cast<std::int64_t>(r.outcome.fires));
    w.kv("fire_p50_ns", r.outcome.fire_p50_ns);
    w.kv("fire_p99_ns", r.outcome.fire_p99_ns);
    w.kv("p99_target_ns", kP99TargetNs);
    w.kv("met_p99", r.outcome.fire_p99_ns <= kP99TargetNs);
    w.kv("recorder", r.plan.recorder);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string doc = w.take();
  std::string err;
  if (!json_validate(doc, &err)) {
    std::fprintf(stderr, "bench json invalid: %s\n", err.c_str());
    return false;
  }
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path, rows.size());
  return true;
}

}  // namespace
}  // namespace hbct

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* out = std::getenv("HBCT_BENCH_JSON");
  return hbct::emit_watch_json(out != nullptr ? out : "BENCH_watch.json") ? 0
                                                                          : 1;
}
