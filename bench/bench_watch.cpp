// Watch throughput under mixed watch classes: watches/sec the streaming
// service sustains per class — conjunctive, disjunctive, invariant, stable,
// channel, relational (both riding watch_stable with predicates that are
// stable by construction on the generated stream), and until — at a fixed
// fire-latency objective, plus a recorder-on vs recorder-off A/B pair
// measuring the always-on flight recorder's gating overhead and an
// incremental-until vs batch-until A/B pair measuring the amortized A3
// decision walk.
//
// Fire latency is measured from raw nanosecond samples (ServiceOptions::
// fire_sample), not the serve histograms: the log2-bucketed histogram
// rounds every percentile up to a power of two, which both hid real
// regressions and manufactured apparent ones (a 33.5 ms "p99" that was one
// cold first-fire landing in the 2^25 bucket). Every measured row runs one
// discarded warm-up pass first, and A/B pairs interleave their passes so
// clock drift and allocator state land on both sides equally.
//
// The BENCH_watch.json artifact (schema hbct.bench/1) extends each row with
// a "watch" object validated by tools/check_report.py and diffed by
// tools/bench_diff.py in CI.
//
// Stream shape (2 processes): round r sends msg r from P0 (writing x = r)
// and, once r >= lag, delivers msg r - lag to P1 (writing y = r - lag). The
// channel 0->1 therefore holds ~lag messages from warmup onwards and never
// drains — channel_bound_ge(0,1,lag) is stable on this stream — and x, y
// are monotone nondecreasing, so sum_ge is stable too. Each class arms one
// watch that fires mid-stream (latency samples) and several that never fire
// (sustained evaluation cost).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "detect/until_inc.h"
#include "obs/expose.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/predicate.h"
#include "predicate/relational.h"
#include "serve/service.h"
#include "util/assert.h"

namespace hbct {
namespace {

using serve::SessionConfig;
using serve::SessionId;
using serve::SessionState;
using serve::StreamingService;

constexpr std::int64_t kLag = 64;  // in-flight messages after warmup

struct WatchPlan {
  std::string cls;        // row label; "mixed" = one of each
  int sessions = 4;
  std::int64_t rounds = 4'000;
  bool recorder = true;   // flight recorder enabled during the pass
  bool until_inc = true;  // incremental until evaluator (vs batch decision)
};

struct WatchOutcome {
  std::int64_t events = 0;
  std::int64_t watches = 0;
  std::int64_t fires = 0;
};

/// Raw fire-latency samples, per class and combined, accumulated across
/// every measured pass of a row (warm-up passes excluded). The mutex is
/// required: sessions pump on pool threads and share one sink.
struct RawLatency {
  std::mutex mu;
  std::array<std::vector<std::uint64_t>, serve::Session::kNumWatchKinds>
      by_class;
  std::vector<std::uint64_t> all;
};

/// Exact (nearest-rank) percentile over raw samples; 0 when empty.
std::uint64_t percentile_ns(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double rank = std::ceil(q * static_cast<double>(v.size()));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

/// The sample set a row's percentiles read: single-class rows their
/// WatchKind series (channel/relational ride kStable), mixed rows the
/// combined stream.
const std::vector<std::uint64_t>& samples_for(const RawLatency& raw,
                                              const std::string& cls) {
  const auto k = [&](WatchKind w) -> const std::vector<std::uint64_t>& {
    return raw.by_class[static_cast<std::size_t>(w)];
  };
  if (cls == "conjunctive") return k(WatchKind::kConjunctive);
  if (cls == "disjunctive") return k(WatchKind::kDisjunctive);
  if (cls == "invariant") return k(WatchKind::kInvariant);
  if (cls == "until") return k(WatchKind::kUntil);
  if (cls == "stable" || cls == "channel" || cls == "relational")
    return k(WatchKind::kStable);
  return raw.all;
}

std::vector<std::string> build_chunks(std::int64_t rounds) {
  std::vector<std::string> chunks;
  {
    wire::Record procs;
    procs.kind = wire::Record::Kind::kProcs;
    procs.nprocs = 2;
    wire::Record var;
    var.kind = wire::Record::Kind::kVar;
    var.name = "x";
    wire::Record var2;
    var2.kind = wire::Record::Kind::kVar;
    var2.name = "y";
    std::string head;
    wire::encode_record(head, procs);
    wire::encode_record(head, var);
    wire::encode_record(head, var2);
    // Initial values so relational sums read defined state everywhere.
    wire::Record init;
    init.kind = wire::Record::Kind::kInit;
    init.proc = 0;
    init.var = 0;
    init.value = 0;
    wire::encode_record(head, init);
    init.proc = 1;
    init.var = 1;
    wire::encode_record(head, init);
    chunks.push_back(std::move(head));
  }
  std::string chunk;
  for (std::int64_t r = 0; r < rounds; ++r) {
    wire::Record send;
    send.kind = wire::Record::Kind::kSend;
    send.proc = 0;
    send.peer = 1;
    send.msg = static_cast<std::uint64_t>(r);
    send.writes.push_back({0, r});  // x = r
    wire::encode_record(chunk, send);
    if (r >= kLag) {
      wire::Record recv;
      recv.kind = wire::Record::Kind::kRecv;
      recv.proc = 1;
      recv.msg = static_cast<std::uint64_t>(r - kLag);
      recv.writes.push_back({1, r - kLag});  // y = r - lag
      wire::encode_record(chunk, recv);
    }
    if (r % 512 == 511) chunks.push_back(std::exchange(chunk, {}));
  }
  {
    // The last kLag messages stay in flight on purpose: the channel never
    // drains, keeping channel_bound_ge stable through the end of stream.
    wire::Record end;
    end.kind = wire::Record::Kind::kEnd;
    wire::encode_record(chunk, end);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

/// Registers the watches of one class on a fresh monitor; returns how many
/// were armed. `target` is the mid-stream firing threshold.
std::int64_t arm(OnlineMonitor& m, const std::string& cls,
                 std::int64_t rounds) {
  const std::int64_t target = rounds / 2;
  const auto xv = [&](Cmp op, std::int64_t k) {
    return var_cmp(0, "x", op, k);
  };
  const auto yv = [&](Cmp op, std::int64_t k) {
    return var_cmp(1, "y", op, k);
  };
  if (cls == "conjunctive") {
    m.watch_possibly(
        make_conjunctive({xv(Cmp::kEq, target), yv(Cmp::kEq, target)}));
    m.watch_possibly(make_conjunctive({xv(Cmp::kLt, 0), yv(Cmp::kLt, 0)}));
    m.watch_possibly(make_conjunctive({xv(Cmp::kEq, -1), yv(Cmp::kEq, -2)}));
    return 3;
  }
  if (cls == "disjunctive") {
    m.watch_possibly(
        make_disjunctive({xv(Cmp::kEq, target), yv(Cmp::kEq, target)}));
    m.watch_possibly(make_disjunctive({xv(Cmp::kLt, 0), yv(Cmp::kLt, 0)}));
    m.watch_possibly(make_disjunctive({xv(Cmp::kEq, -1), yv(Cmp::kEq, -2)}));
    return 3;
  }
  if (cls == "invariant") {
    // AG(x < target or y < target): violated mid-stream once both advance.
    m.watch_invariant(
        make_disjunctive({xv(Cmp::kLt, target), yv(Cmp::kLt, target)}));
    m.watch_invariant(make_disjunctive({xv(Cmp::kGe, 0), yv(Cmp::kGe, -1)}));
    return 2;
  }
  if (cls == "stable") {
    const std::int64_t fire_at = rounds;  // ~half the stream's 2r - lag events
    m.watch_stable(make_stable(
        [fire_at](const Computation&, const Cut& g) {
          return g.total() >= fire_at;
        },
        "progress"));
    m.watch_stable(make_stable(
        [](const Computation&, const Cut&) { return false; }, "never"));
    return 2;
  }
  if (cls == "channel") {
    // Stable on this stream: occupancy of 0->1 reaches kLag at warmup and
    // never drops below it (the tail messages are never delivered).
    m.watch_stable(channel_bound_ge(0, 1, static_cast<std::int32_t>(kLag)));
    m.watch_stable(channel_bound_ge(0, 1, 1 << 30));
    return 2;
  }
  if (cls == "relational") {
    // x + y is monotone nondecreasing, so sum_ge is stable.
    m.watch_stable(sum_ge({{0, "x"}, {1, "y"}}, target));
    m.watch_stable(sum_ge({{0, "x"}, {1, "y"}}, std::int64_t{1} << 60));
    return 2;
  }
  if (cls == "until") {
    // E[x >= 0 U P1-progress]: streaming A3 decides once I_q is observed.
    // Staggered thresholds make every watch decide at a different I_q, so
    // each pass yields many independent fire-latency samples — enough that
    // the p99 is a real percentile, not the single worst scheduler stall.
    const std::int64_t span = rounds - kLag;
    for (std::int64_t k = 1; k <= 8; ++k)
      m.watch_until(make_conjunctive({xv(Cmp::kGe, 0)}),
                    PredicatePtr(progress_ge(1, span * k / 10)));
    m.watch_until(make_conjunctive({xv(Cmp::kGe, 0)}),
                  PredicatePtr(progress_ge(1, rounds * 16)));
    return 9;
  }
  HBCT_ASSERT(cls == "mixed");
  std::int64_t n = 0;
  for (const char* c : {"conjunctive", "disjunctive", "invariant", "stable",
                        "channel", "relational", "until"})
    n += arm(m, c, rounds);
  return n;
}

void run_watches(const WatchPlan& plan, const std::vector<std::string>& chunks,
                 WatchOutcome* out, RawLatency* raw = nullptr) {
  FlightRecorder::global().set_enabled(plan.recorder);
  set_until_inc_enabled(plan.until_inc);
  Tracer tracer;
  serve::ServiceOptions opt;
  opt.trace = &tracer;
  if (raw != nullptr) {
    opt.fire_sample = [raw](WatchKind k, std::uint64_t ns) {
      std::lock_guard<std::mutex> lk(raw->mu);
      const std::size_t i = static_cast<std::size_t>(k);
      if (i < raw->by_class.size()) raw->by_class[i].push_back(ns);
      raw->all.push_back(ns);
    };
  }
  StreamingService svc(opt);

  SessionConfig cfg;
  cfg.num_procs = 2;
  std::int64_t watches = 0;
  std::vector<SessionId> sids;
  for (int k = 0; k < plan.sessions; ++k) {
    sids.push_back(svc.open(cfg, [&](OnlineMonitor& m) {
      m.var("x");
      m.var("y");
      watches += arm(m, plan.cls, plan.rounds);
    }));
  }
  for (const std::string& chunk : chunks)
    for (SessionId sid : sids) svc.post(sid, chunk);
  svc.drain();
  FlightRecorder::global().set_enabled(true);
  set_until_inc_enabled(true);

  if (out != nullptr) {
    out->events = 0;
    out->fires = 0;
    out->watches = watches;
    for (SessionId sid : sids) {
      if (svc.state(sid) != SessionState::kFinished) {
        std::fprintf(stderr, "session failed: %s\n", svc.error(sid).c_str());
        std::abort();
      }
      const auto st = svc.stats(sid);
      out->events += st.events;
      out->fires += st.fires;
    }
  }
}

void BM_watch_class(benchmark::State& state, const char* cls) {
  WatchPlan plan;
  plan.cls = cls;
  const auto chunks = build_chunks(plan.rounds);
  for (auto _ : state) run_watches(plan, chunks, nullptr);
  state.SetItemsProcessed(state.iterations() * plan.sessions *
                          (2 * plan.rounds - kLag));
}
BENCHMARK_CAPTURE(BM_watch_class, conjunctive, "conjunctive");
BENCHMARK_CAPTURE(BM_watch_class, stable, "stable");
BENCHMARK_CAPTURE(BM_watch_class, mixed, "mixed");

// ---- BENCH_watch.json --------------------------------------------------------

struct WatchRow {
  benchio::BenchRow base;
  WatchPlan plan;
  WatchOutcome outcome;
  std::uint64_t fire_p50_ns = 0;
  std::uint64_t fire_p99_ns = 0;
  std::uint64_t fire_samples = 0;
};

/// Fire-latency objective every row is measured against: p99 of the class's
/// fire latency must sit under this for the row to report met_p99 = true.
constexpr std::uint64_t kP99TargetNs = 250'000;  // 250 us

/// Fills the row's percentile fields from its accumulated raw samples.
void fill_latency(WatchRow& row, const RawLatency& raw) {
  const std::vector<std::uint64_t>& s = samples_for(raw, row.plan.cls);
  row.fire_samples = static_cast<std::uint64_t>(s.size());
  row.fire_p50_ns = percentile_ns(s, 0.5);
  row.fire_p99_ns = percentile_ns(s, 0.99);
}

/// One measured row: a pinned warm-up pass (cold-path fires and lazy
/// statics excluded from the samples), then `iters` passes accumulating
/// wall times and raw fire latencies.
WatchRow measure_row(const char* name, const char* label,
                     const WatchPlan& plan,
                     const std::vector<std::string>& chunks, int iters) {
  WatchRow row;
  row.base.name = name;
  row.base.label = label;
  row.plan = plan;
  run_watches(plan, chunks, nullptr);  // warm-up, discarded
  RawLatency raw;
  std::vector<double> ns;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run_watches(plan, chunks, &row.outcome, &raw);
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  row.base.ns = Summary::of(std::move(ns));
  fill_latency(row, raw);
  return row;
}

/// An interleaved A/B pair: both sides warm up, then passes alternate
/// A,B,A,B,... so clock drift, allocator state, and thermal throttle land
/// on both sides equally — separate blocks showed run-to-run spread an
/// order of magnitude above the deltas being measured.
std::pair<WatchRow, WatchRow> measure_ab(
    const char* name_a, const char* label_a, const WatchPlan& plan_a,
    const char* name_b, const char* label_b, const WatchPlan& plan_b,
    const std::vector<std::string>& chunks, int iters) {
  WatchRow a, b;
  a.base.name = name_a;
  a.base.label = label_a;
  a.plan = plan_a;
  b.base.name = name_b;
  b.base.label = label_b;
  b.plan = plan_b;
  run_watches(plan_a, chunks, nullptr);  // warm-up, both sides, discarded
  run_watches(plan_b, chunks, nullptr);
  RawLatency raw_a, raw_b;
  std::vector<double> ns_a, ns_b;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run_watches(plan_a, chunks, &a.outcome, &raw_a);
    const auto t1 = std::chrono::steady_clock::now();
    run_watches(plan_b, chunks, &b.outcome, &raw_b);
    const auto t2 = std::chrono::steady_clock::now();
    ns_a.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    ns_b.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
            .count()));
  }
  a.base.ns = Summary::of(std::move(ns_a));
  b.base.ns = Summary::of(std::move(ns_b));
  fill_latency(a, raw_a);
  fill_latency(b, raw_b);
  return {std::move(a), std::move(b)};
}

bool emit_watch_json(const char* path) {
  struct Config {
    const char* name;
    const char* label;
    WatchPlan plan;
  };
  const Config configs[] = {
      {"watch/conjunctive", "4 sessions, conjunctive watches",
       {"conjunctive", 4, 4'000, true, true}},
      {"watch/disjunctive", "4 sessions, disjunctive watches",
       {"disjunctive", 4, 4'000, true, true}},
      {"watch/invariant", "4 sessions, invariant watches",
       {"invariant", 4, 4'000, true, true}},
      {"watch/stable", "4 sessions, stable watches",
       {"stable", 4, 4'000, true, true}},
      {"watch/channel", "4 sessions, channel watches (stable ride)",
       {"channel", 4, 4'000, true, true}},
      {"watch/relational", "4 sessions, relational watches (stable ride)",
       {"relational", 4, 4'000, true, true}},
  };

  std::vector<WatchRow> rows;
  for (const Config& c : configs) {
    const auto chunks = build_chunks(c.plan.rounds);
    // Enough timed passes that per-class p99 tolerates a couple of
    // scheduler stalls (4 deciding fires/pass -> ~200 samples) instead of
    // degenerating to the max sample.
    rows.push_back(measure_row(c.name, c.label, c.plan, chunks, 51));
  }

  // Until A/B: incremental evaluator (feed-time amortized EG table) vs
  // batch decision (full A3 walk at I_q). Same workload, interleaved.
  {
    // One session: this pair isolates decision latency at I_q, and a lone
    // pump task cannot be preempted by a sibling session's pump mid-apply
    // (which on a small box shows up as multi-ms scheduler stalls in the
    // fire-latency tail that have nothing to do with the decision walk).
    WatchPlan inc{"until", 1, 4'000, true, true};
    WatchPlan batch = inc;
    batch.until_inc = false;
    const auto chunks = build_chunks(inc.rounds);
    auto [a, b] = measure_ab(
        "watch/until", "1 session, until watches, incremental", inc,
        "watch/until/batch", "1 session, until watches, batch decision",
        batch, chunks, 26);
    rows.push_back(std::move(a));
    rows.push_back(std::move(b));
  }

  // Recorder A/B: the always-on flight recorder's gating overhead on the
  // mixed workload.
  {
    WatchPlan rec{"mixed", 4, 4'000, true, true};
    WatchPlan norec = rec;
    norec.recorder = false;
    const auto chunks = build_chunks(rec.rounds);
    auto [a, b] = measure_ab(
        "watch/mixed/rec", "4 sessions, one of each class, recorder on", rec,
        "watch/mixed/norec", "4 sessions, one of each class, recorder off",
        norec, chunks, 15);
    rows.push_back(std::move(a));
    rows.push_back(std::move(b));
  }

  JsonWriter w;
  w.begin_object();
  w.kv("schema", benchio::kBenchSchema);
  w.kv("bench", "watch");
  w.key("rows").begin_array();
  for (const WatchRow& r : rows) {
    w.begin_object();
    w.kv("name", r.base.name);
    w.kv("label", r.base.label);
    w.kv("iters", static_cast<std::uint64_t>(r.base.ns.count));
    w.key("ns");
    benchio::write_summary(w, r.base.ns);
    w.key("report").raw("null");
    w.key("watch").begin_object();
    w.kv("class", r.plan.cls);
    w.kv("sessions", static_cast<std::uint64_t>(r.plan.sessions));
    w.kv("watches", static_cast<std::int64_t>(r.outcome.watches));
    w.kv("events", static_cast<std::int64_t>(r.outcome.events));
    // Nominal watch evaluations (every armed watch sees every event of its
    // session) over median wall time: the headline watches/sec figure.
    const double evals = static_cast<double>(r.outcome.watches) /
                         r.plan.sessions *
                         static_cast<double>(r.outcome.events);
    w.kv("watch_evals_per_sec",
         r.base.ns.median > 0 ? evals * 1e9 / r.base.ns.median : 0.0);
    w.kv("fires", static_cast<std::int64_t>(r.outcome.fires));
    w.kv("fire_p50_ns", r.fire_p50_ns);
    w.kv("fire_p99_ns", r.fire_p99_ns);
    w.kv("fire_samples", r.fire_samples);
    w.kv("p99_target_ns", kP99TargetNs);
    w.kv("met_p99", r.fire_p99_ns <= kP99TargetNs);
    w.kv("recorder", r.plan.recorder);
    w.kv("until_inc", r.plan.until_inc);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string doc = w.take();
  std::string err;
  if (!json_validate(doc, &err)) {
    std::fprintf(stderr, "bench json invalid: %s\n", err.c_str());
    return false;
  }
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path, rows.size());
  return true;
}

}  // namespace
}  // namespace hbct

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* out = std::getenv("HBCT_BENCH_JSON");
  return hbct::emit_watch_json(out != nullptr ? out : "BENCH_watch.json") ? 0
                                                                          : 1;
}
