// Ablation benches for the design choices DESIGN.md calls out:
//
//  1. A1 predecessor choice: first-satisfying (greedy) vs uniformly random
//     among all satisfying predecessors (Theorem 2 says the verdict is
//     identical; the greedy policy skips the remaining evaluations).
//  2. EF(conjunctive): Chase–Garg advancement vs the Garg–Waldecker weak
//     repair loop (same least cut, different inner loops).
//  3. Meet-irreducibles: reverse-vector-clock extraction (O(n|E|)) vs
//     cover-degree on the explicit lattice (needs |C(E)| nodes).
//  4. EU: A3 vs the generic DFS search on the same instance.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

Computation make_comp(std::int32_t procs, std::int32_t events_per_proc,
                      std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events_per_proc;
  opt.num_vars = 2;
  opt.p_send = 0.25;
  opt.seed = seed;
  return generate_random(opt);
}

PredicatePtr satisfied_linear(std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < procs; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  return make_and(make_conjunctive(std::move(ls)),
                  channel_bound_le(0, 1, 1 << 20));
}

// ---- 1. A1 choice policy --------------------------------------------------------

void BM_a1_greedy(benchmark::State& state) {
  Computation c = make_comp(6, static_cast<std::int32_t>(state.range(0)), 3);
  PredicatePtr p = satisfied_linear(6);
  DetectResult last;
  for (auto _ : state) last = detect_eg_linear(c, *p);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.SetLabel(last.holds() ? "true" : "false");
}
BENCHMARK(BM_a1_greedy)->Arg(128)->Arg(1024);

void BM_a1_randomized(benchmark::State& state) {
  Computation c = make_comp(6, static_cast<std::int32_t>(state.range(0)), 3);
  PredicatePtr p = satisfied_linear(6);
  DetectResult last;
  std::uint64_t seed = 1;
  for (auto _ : state) last = detect_eg_linear_randomized(c, *p, seed++);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.SetLabel(last.holds() ? "true" : "false");
}
BENCHMARK(BM_a1_randomized)->Arg(128)->Arg(1024);

// ---- 2. EF(conjunctive): Chase–Garg vs GW weak ------------------------------------

PredicatePtr late_conjunctive(std::int32_t procs) {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < procs; ++i)
    ls.push_back(progress_ge(i, 100));  // forces a deep advancement
  return make_conjunctive(std::move(ls));
}

void BM_ef_chase_garg(benchmark::State& state) {
  Computation c = make_comp(6, static_cast<std::int32_t>(state.range(0)), 5);
  PredicatePtr p = late_conjunctive(6);
  DetectResult last;
  for (auto _ : state) last = detect_ef_linear(c, *p);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
}
BENCHMARK(BM_ef_chase_garg)->Arg(128)->Arg(1024);

void BM_ef_gw_weak(benchmark::State& state) {
  Computation c = make_comp(6, static_cast<std::int32_t>(state.range(0)), 5);
  auto p = as_conjunctive(late_conjunctive(6));
  DetectResult last;
  for (auto _ : state) last = detect_ef_conjunctive(c, *p);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
}
BENCHMARK(BM_ef_gw_weak)->Arg(128)->Arg(1024);

// ---- 3. Meet-irreducibles: direct vs explicit lattice ------------------------------

void BM_mirr_direct(benchmark::State& state) {
  Computation c = make_comp(5, 5, 7);
  for (auto _ : state) {
    auto cuts = meet_irreducible_cuts(c);
    benchmark::DoNotOptimize(cuts);
  }
}
BENCHMARK(BM_mirr_direct);

void BM_mirr_via_lattice(benchmark::State& state) {
  Computation c = make_comp(5, 5, 7);
  for (auto _ : state) {
    Lattice lat = Lattice::build(c, 1u << 22);
    auto nodes = meet_irreducibles(lat);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_mirr_via_lattice);

// ---- 4. EU: A3 vs generic DFS -------------------------------------------------------

void BM_eu_a3(benchmark::State& state) {
  Computation c = make_comp(4, static_cast<std::int32_t>(state.range(0)), 9);
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < 4; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  auto p = make_conjunctive(std::move(ls));
  PredicatePtr q = make_and(all_channels_empty(),
                            PredicatePtr(progress_ge(0, state.range(0) / 2)));
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.SetLabel(last.holds() ? "true" : "false");
}
BENCHMARK(BM_eu_a3)->Arg(8)->Arg(16)->Arg(32);

void BM_eu_dfs(benchmark::State& state) {
  Computation c = make_comp(4, static_cast<std::int32_t>(state.range(0)), 9);
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < 4; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  auto p = make_conjunctive(std::move(ls));
  PredicatePtr q = make_and(all_channels_empty(),
                            PredicatePtr(progress_ge(0, state.range(0) / 2)));
  DetectResult last;
  for (auto _ : state) last = detect_eu_dfs(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.SetLabel(last.holds() ? "true" : "false");
}
BENCHMARK(BM_eu_dfs)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
