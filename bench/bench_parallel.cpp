// Parallel detection engine: speedup of the fan-out sites versus the
// parallelism knob (DispatchOptions::parallelism / LatticeChecker
// parallelism). Each benchmark sweeps widths 1/2/4/8 over the Table-1
// workload so the scaling curve is read off one table. The verdicts and
// operation counts are identical at every width (see
// tests/test_parallel_detect.cpp); only wall-clock should move.
//
// On a single-core box the expectation is flat timings with a small
// coordination overhead at width > 1 — record whatever the hardware gives;
// EXPERIMENTS.md notes the core count next to the numbers.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_report.h"
#include "hbct.h"

namespace hbct {
namespace {

constexpr std::int32_t kProcs = 6;
constexpr std::int32_t kEventsPerProc = 200;

const Computation& workload() {
  static const Computation c = [] {
    GenOptions opt;
    opt.num_procs = kProcs;
    opt.events_per_proc = kEventsPerProc;
    opt.num_vars = 2;
    opt.seed = 2002;
    return generate_random(opt);
  }();
  return c;
}

// Small enough for the explicit lattice, big enough that label() has work.
const Computation& lattice_workload() {
  static const Computation c = [] {
    GenOptions opt;
    opt.num_procs = 4;
    opt.events_per_proc = 6;
    opt.num_vars = 2;
    opt.seed = 77;
    return generate_random(opt);
  }();
  return c;
}

void report(benchmark::State& state, const DetectResult& r) {
  state.counters["evals"] = static_cast<double>(r.stats.predicate_evals);
  state.counters["steps"] = static_cast<double>(r.stats.cut_steps);
  state.SetLabel(r.algorithm + (r.holds() ? " -> true" : " -> false"));
}

/// Wide DNF whose disjuncts each force a full conjunctive scan: the
/// ef-or-split fans one branch per disjunct.
PredicatePtr wide_dnf() {
  std::vector<PredicatePtr> ds;
  for (int d = 0; d < 8; ++d) {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < kProcs; ++i)
      ls.push_back(var_cmp(i, "v0", Cmp::kEq, d % 6));
    ds.push_back(PredicatePtr(make_conjunctive(std::move(ls))));
  }
  return make_or(std::move(ds));
}

PredicatePtr wide_cnf() {
  std::vector<PredicatePtr> cs;
  for (int d = 0; d < 8; ++d) {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < kProcs; ++i)
      ls.push_back(var_cmp(i, "v1", Cmp::kEq, d % 6));
    cs.push_back(PredicatePtr(make_disjunctive(std::move(ls))));
  }
  return make_and(std::move(cs));
}

void BM_ef_or_split(benchmark::State& state) {
  const Computation& c = workload();
  PredicatePtr p = wide_dnf();
  DispatchOptions opt;
  opt.parallelism = static_cast<std::size_t>(state.range(0));
  DetectResult last;
  for (auto _ : state) last = detect(c, Op::kEF, p, nullptr, opt);
  report(state, last);
}
BENCHMARK(BM_ef_or_split)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ag_and_split(benchmark::State& state) {
  const Computation& c = workload();
  PredicatePtr p = wide_cnf();
  DispatchOptions opt;
  opt.parallelism = static_cast<std::size_t>(state.range(0));
  DetectResult last;
  for (auto _ : state) last = detect(c, Op::kAG, p, nullptr, opt);
  report(state, last);
}
BENCHMARK(BM_ag_and_split)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_eu_frontier_sweep(benchmark::State& state) {
  const Computation& c = workload();
  auto p = [] {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < kProcs; ++i)
      ls.push_back(var_cmp(i, "v0", Cmp::kLe, 8));
    return make_conjunctive(std::move(ls));
  }();
  PredicatePtr q = make_and(all_channels_empty(),
                            PredicatePtr(var_cmp(0, "v0", Cmp::kGe, 3)));
  const std::size_t par = static_cast<std::size_t>(state.range(0));
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q, par);
  report(state, last);
}
BENCHMARK(BM_eu_frontier_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_au_two_refuters(benchmark::State& state) {
  const Computation& c = workload();
  auto mk = [](const char* var, std::int64_t k) {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < kProcs; ++i) ls.push_back(var_cmp(i, var, Cmp::kGe, k));
    return make_disjunctive(std::move(ls));
  };
  auto p = mk("v0", 1);
  auto q = mk("v1", 2);
  const std::size_t par = static_cast<std::size_t>(state.range(0));
  DetectResult last;
  for (auto _ : state) last = detect_au_disjunctive(c, *p, *q, par);
  report(state, last);
}
BENCHMARK(BM_au_two_refuters)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_lattice_label_sweep(benchmark::State& state) {
  LatticeChecker chk(lattice_workload());
  chk.set_parallelism(static_cast<std::size_t>(state.range(0)));
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < 4; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 3));
  auto p = make_conjunctive(std::move(ls));
  DetectStats st;
  std::size_t labelled = 0;
  for (auto _ : state) {
    st = DetectStats{};
    const auto labels = chk.label(*p, &st);
    labelled = labels.size();
    benchmark::DoNotOptimize(labels.data());
  }
  state.counters["evals"] = static_cast<double>(st.predicate_evals);
  state.counters["nodes"] = static_cast<double>(labelled);
}
BENCHMARK(BM_lattice_label_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_lattice_class_check(benchmark::State& state) {
  LatticeChecker chk(lattice_workload());
  chk.set_parallelism(static_cast<std::size_t>(state.range(0)));
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < 4; ++i) ls.push_back(var_cmp(i, "v1", Cmp::kLe, 4));
  auto p = make_conjunctive(std::move(ls));
  BruteClassCheck last{};
  for (auto _ : state) last = brute_check_classes(chk, *p);
  state.SetLabel(std::string("linear=") + (last.linear ? "1" : "0") +
                 " stable=" + (last.stable ? "1" : "0"));
}
BENCHMARK(BM_lattice_class_check)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- BENCH_parallel.json -------------------------------------------------------
//
// One self-timed row per (fan-out site, width); the width-4 ef-or-split row
// re-runs traced and embeds its report, whose metrics block carries the
// parallel.* counters and the queue-depth high-water mark.

bool emit_parallel_json(const std::string& path) {
  constexpr int kIters = 12;
  const Computation& c = workload();
  std::vector<benchio::BenchRow> rows;

  const auto dnf = wide_dnf();
  const auto cnf = wide_cnf();
  const auto eu_p = [] {
    std::vector<LocalPredicatePtr> ls;
    for (ProcId i = 0; i < kProcs; ++i)
      ls.push_back(var_cmp(i, "v0", Cmp::kLe, 8));
    return make_conjunctive(std::move(ls));
  }();
  const PredicatePtr eu_q = make_and(
      all_channels_empty(), PredicatePtr(var_cmp(0, "v0", Cmp::kGe, 3)));

  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
    const std::string suffix = ".w" + std::to_string(width);
    {
      benchio::BenchRow row;
      row.name = "ef_or_split" + suffix;
      DispatchOptions opt;
      opt.parallelism = width;
      DetectResult last;
      row.ns = benchio::time_ns(
          kIters, [&] { last = detect(c, Op::kEF, dnf, nullptr, opt); });
      row.label = last.algorithm + (last.holds() ? " -> true" : " -> false");
      if (width == 4) {
        opt.trace = true;
        last = detect(c, Op::kEF, dnf, nullptr, opt);
        row.report = report_json(last);
      }
      rows.push_back(std::move(row));
    }
    {
      benchio::BenchRow row;
      row.name = "ag_and_split" + suffix;
      DispatchOptions opt;
      opt.parallelism = width;
      DetectResult last;
      row.ns = benchio::time_ns(
          kIters, [&] { last = detect(c, Op::kAG, cnf, nullptr, opt); });
      row.label = last.algorithm + (last.holds() ? " -> true" : " -> false");
      rows.push_back(std::move(row));
    }
    {
      benchio::BenchRow row;
      row.name = "eu_frontier_sweep" + suffix;
      DetectResult last;
      row.ns = benchio::time_ns(
          kIters, [&] { last = detect_eu(c, *eu_p, *eu_q, width); });
      row.label = last.algorithm + (last.holds() ? " -> true" : " -> false");
      rows.push_back(std::move(row));
    }
  }
  return benchio::write_bench_json(path, "parallel", rows);
}

}  // namespace
}  // namespace hbct

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* out = std::getenv("HBCT_BENCH_JSON");
  return hbct::emit_parallel_json(out != nullptr ? out : "BENCH_parallel.json")
             ? 0
             : 1;
}
