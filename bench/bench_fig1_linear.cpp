// Fig. 1 reproduction: Algorithms A1 (EG, linear) and A2 (AG, linear)
// against the explicit-lattice baseline.
//
// Series: |E| sweep at fixed n, and n sweep at fixed |E|. The baseline is
// capped to shapes whose lattice fits in memory — its blow-up across the n
// sweep is the paper's state-explosion argument in numbers. The `evals`
// counter makes the O(n|E|) claim visible independently of wall time.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

Computation make_comp(std::int32_t procs, std::int32_t events_per_proc,
                      std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events_per_proc;
  opt.num_vars = 1;
  opt.p_send = 0.3;
  opt.seed = seed;
  return generate_random(opt);
}

PredicatePtr linear_pred(std::int32_t procs) {
  // Satisfied everywhere (full A1/A2 walks) yet linear-not-conjunctive, so
  // the dispatcher cannot short-circuit through the conjunctive scans.
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < procs; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  return make_and(make_conjunctive(std::move(ls)),
                  channel_bound_le(0, procs > 1 ? 1 : 0, 1 << 20));
}

void report(benchmark::State& state, const DetectResult& r,
            std::int64_t total_events) {
  state.counters["evals"] = static_cast<double>(r.stats.predicate_evals);
  state.counters["E"] = static_cast<double>(total_events);
  state.SetLabel(r.algorithm + (r.holds() ? " -> true" : " -> false"));
}

// ---- |E| sweep at n = 6 ------------------------------------------------------

void BM_A1_eg_events(benchmark::State& state) {
  const std::int32_t per = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(6, per, 11);
  PredicatePtr p = linear_pred(6);
  DetectResult last;
  for (auto _ : state) last = detect_eg_linear(c, *p);
  report(state, last, c.total_events());
}
BENCHMARK(BM_A1_eg_events)->RangeMultiplier(4)->Range(16, 4096);

void BM_A2_ag_events(benchmark::State& state) {
  const std::int32_t per = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(6, per, 11);
  PredicatePtr p = linear_pred(6);
  DetectResult last;
  for (auto _ : state) last = detect_ag_linear(c, *p);
  report(state, last, c.total_events());
}
BENCHMARK(BM_A2_ag_events)->RangeMultiplier(4)->Range(16, 4096);

// ---- n sweep at ~|E| = 720 ---------------------------------------------------

void BM_A1_eg_procs(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(n, 720 / n, 13);
  PredicatePtr p = linear_pred(n);
  DetectResult last;
  for (auto _ : state) last = detect_eg_linear(c, *p);
  report(state, last, c.total_events());
}
BENCHMARK(BM_A1_eg_procs)->DenseRange(2, 10, 2)->Arg(16)->Arg(24);

void BM_A2_ag_procs(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(n, 720 / n, 13);
  PredicatePtr p = linear_pred(n);
  DetectResult last;
  for (auto _ : state) last = detect_ag_linear(c, *p);
  report(state, last, c.total_events());
}
BENCHMARK(BM_A2_ag_procs)->DenseRange(2, 10, 2)->Arg(16)->Arg(24);

// ---- Explicit-lattice baseline (state explosion) ------------------------------

void BM_lattice_eg_procs(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  // Keep |E| fixed and small; the lattice still explodes with n.
  Computation c = make_comp(n, 24 / n, 13);
  PredicatePtr p = linear_pred(n);
  auto lat = Lattice::try_build(c, 1u << 22);
  if (!lat) {
    state.SkipWithError("lattice exceeds the node cap");
    return;
  }
  LatticeChecker chk(std::move(*lat));
  DetectResult last;
  for (auto _ : state) last = chk.detect(Op::kEG, *p);
  state.counters["nodes"] = static_cast<double>(chk.lattice().size());
  report(state, last, c.total_events());
}
BENCHMARK(BM_lattice_eg_procs)->DenseRange(2, 8, 1);

void BM_lattice_ag_procs(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(n, 24 / n, 13);
  PredicatePtr p = linear_pred(n);
  auto lat = Lattice::try_build(c, 1u << 22);
  if (!lat) {
    state.SkipWithError("lattice exceeds the node cap");
    return;
  }
  LatticeChecker chk(std::move(*lat));
  DetectResult last;
  for (auto _ : state) last = chk.detect(Op::kAG, *p);
  state.counters["nodes"] = static_cast<double>(chk.lattice().size());
  report(state, last, c.total_events());
}
BENCHMARK(BM_lattice_ag_procs)->DenseRange(2, 8, 1);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
