// Complexity regression: measures the empirical log-log slope of each
// polynomial algorithm's operation count against |E| and n, checking the
// paper's O(n|E|) claims without relying on wall-clock stability.
//
// This binary prints a table of slopes instead of per-iteration timings;
// slopes near 1.0 over the |E| sweep confirm linear growth.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <vector>

#include "hbct.h"

namespace hbct {
namespace {

Computation make_comp(std::int32_t procs, std::int32_t events_per_proc,
                      std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events_per_proc;
  opt.num_vars = 2;
  opt.p_send = 0.25;
  opt.seed = seed;
  return generate_random(opt);
}

PredicatePtr satisfied_linear(std::int32_t procs) {
  // Satisfied at every cut (v0 stays within the generator's range and the
  // channel bound is huge), and linear-but-not-conjunctive, so A1/A2 must
  // do their full walks rather than exiting early or being special-cased.
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < procs; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  return make_and(make_conjunctive(std::move(ls)),
                  channel_bound_le(0, procs > 1 ? 1 : 0, 1 << 20));
}

using Detector = std::function<DetectStats(const Computation&, std::int32_t)>;

double events_slope(const Detector& run) {
  std::vector<double> xs, ys;
  for (std::int32_t per : {64, 128, 256, 512, 1024, 2048}) {
    Computation c = make_comp(6, per, 3);
    const DetectStats st = run(c, 6);
    xs.push_back(static_cast<double>(c.total_events()));
    ys.push_back(static_cast<double>(st.predicate_evals + st.cut_steps));
  }
  return loglog_slope(xs, ys);
}

double procs_slope(const Detector& run) {
  std::vector<double> xs, ys;
  for (std::int32_t n : {2, 4, 8, 16, 32}) {
    Computation c = make_comp(n, 2048 / n, 5);
    const DetectStats st = run(c, n);
    xs.push_back(static_cast<double>(n));
    ys.push_back(static_cast<double>(st.predicate_evals + st.cut_steps));
  }
  return loglog_slope(xs, ys);
}

struct Row {
  const char* name;
  Detector run;
};

const std::vector<Row>& rows() {
  static const std::vector<Row> r = {
      {"EF chase-garg (linear)",
       [](const Computation& c, std::int32_t n) {
         DetectStats st;
         auto p = make_and(
             make_conjunctive({var_cmp(0, "v0", Cmp::kEq, -1)}),  // never
             all_channels_empty());
         least_satisfying_cut(c, *p, st);  // full walk to exhaustion
         (void)n;
         return st;
       }},
      {"EG A1 (linear)",
       [](const Computation& c, std::int32_t n) {
         return detect_eg_linear(c, *satisfied_linear(n)).stats;
       }},
      {"AG A2 (linear)",
       [](const Computation& c, std::int32_t n) {
         return detect_ag_linear(c, *satisfied_linear(n)).stats;
       }},
      {"AF gw-strong (conjunctive)",
       [](const Computation& c, std::int32_t n) {
         std::vector<LocalPredicatePtr> ls;
         for (ProcId i = 0; i < n; ++i)
           ls.push_back(var_cmp(i, "v0", Cmp::kLe, 4));
         return detect_af_conjunctive(c, *make_conjunctive(std::move(ls)))
             .stats;
       }},
      {"EU A3 (conj, linear)",
       [](const Computation& c, std::int32_t n) {
         std::vector<LocalPredicatePtr> ls;
         for (ProcId i = 0; i < n; ++i)
           ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
         auto p = make_conjunctive(std::move(ls));
         PredicatePtr q = make_and(
             all_channels_empty(),
             PredicatePtr(progress_ge(0, c.num_events(0) / 2)));
         return detect_eu(c, *p, *q).stats;
       }},
      {"AU identity (disjunctive)",
       [](const Computation& c, std::int32_t n) {
         std::vector<LocalPredicatePtr> ps, qs;
         for (ProcId i = 0; i < n; ++i) {
           ps.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
           qs.push_back(var_cmp(i, "v1", Cmp::kGe, 1));
         }
         return detect_au_disjunctive(c, *make_disjunctive(std::move(ps)),
                                      *make_disjunctive(std::move(qs)))
             .stats;
       }},
  };
  return r;
}

// Expose the slopes through google-benchmark so the harness run records
// them; each "iteration" computes the full sweep once.
void BM_slope_vs_events(benchmark::State& state) {
  const Row& row = rows()[static_cast<std::size_t>(state.range(0))];
  double slope = 0;
  for (auto _ : state) slope = events_slope(row.run);
  state.counters["loglog_slope"] = slope;
  state.SetLabel(row.name);
}
BENCHMARK(BM_slope_vs_events)->DenseRange(0, 5, 1)->Iterations(1);

void BM_slope_vs_procs(benchmark::State& state) {
  const Row& row = rows()[static_cast<std::size_t>(state.range(0))];
  double slope = 0;
  for (auto _ : state) slope = procs_slope(row.run);
  state.counters["loglog_slope"] = slope;
  state.SetLabel(row.name);
}
BENCHMARK(BM_slope_vs_procs)->DenseRange(0, 5, 1)->Iterations(1);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
