// Shared helper for the benches' machine-readable artifacts.
//
// Google Benchmark owns the human-readable console table; the BENCH_*.json
// artifacts come from a second, self-timed pass after RunSpecifiedBenchmarks
// so the document layout is ours (schema hbct.bench/1) and rows can embed
// full hbct.report/1 run reports. Timing is steady_clock around whole
// detections — coarser than benchmark's stabilized loops, but plenty for
// the percentile summaries the artifacts carry.
//
// Schema (kBenchSchema = "hbct.bench/1"):
//   { "schema": "hbct.bench/1",
//     "bench":  "<binary name, e.g. table1>",
//     "rows": [ { "name":  "<cell/benchmark name>",
//                 "label": "<algorithm -> verdict, width, ...>",
//                 "iters": n,
//                 "ns": { "min","max","mean","median","stddev",
//                         "p50","p90","p99" },          // per-iteration ns
//                 "report": {hbct.report/1} | null },   // embedded verbatim
//               ... ] }
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/stats.h"

namespace hbct {
namespace benchio {

inline constexpr const char* kBenchSchema = "hbct.bench/1";

struct BenchRow {
  std::string name;
  std::string label;
  Summary ns;          // per-iteration wall time, nanoseconds
  std::string report;  // embedded hbct.report/1 document; empty = none
};

/// Times fn() `iters` times (after one warmup call that also faults in lazy
/// workload statics) and summarises per-iteration wall time in nanoseconds.
inline Summary time_ns(int iters, const std::function<void()>& fn) {
  fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  return Summary::of(std::move(samples));
}

inline void write_summary(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.kv("min", s.min)
      .kv("max", s.max)
      .kv("mean", s.mean)
      .kv("median", s.median)
      .kv("stddev", s.stddev)
      .kv("p50", s.p50)
      .kv("p90", s.p90)
      .kv("p99", s.p99);
  w.end_object();
}

/// Renders the hbct.bench/1 document.
inline std::string bench_json(const std::string& bench,
                              const std::vector<BenchRow>& rows) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kBenchSchema);
  w.kv("bench", bench);
  w.key("rows").begin_array();
  for (const BenchRow& r : rows) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("label", r.label);
    w.kv("iters", static_cast<std::uint64_t>(r.ns.count));
    w.key("ns");
    write_summary(w, r.ns);
    w.key("report");
    if (r.report.empty()) {
      w.raw("null");
    } else {
      w.raw(r.report);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

/// Validates and writes the document. Failure (invalid JSON, unwritable
/// path) is reported on stderr and returned, not thrown — the console
/// benchmark output already ran and should not be discarded.
inline bool write_bench_json(const std::string& path, const std::string& bench,
                             const std::vector<BenchRow>& rows) {
  const std::string doc = bench_json(bench, rows);
  std::string err;
  if (!json_validate(doc, &err)) {
    std::fprintf(stderr, "bench json invalid (%s): %s\n", path.c_str(),
                 err.c_str());
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return true;
}

}  // namespace benchio
}  // namespace hbct
