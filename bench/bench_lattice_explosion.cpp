// The state-explosion motivation (Section 1): how fast |C(E)| grows, and
// what it costs to build — the quantity every polynomial algorithm in this
// library avoids.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

void BM_grid_lattice_build(benchmark::State& state) {
  // Independent processes: |C(E)| = (k+1)^n, the worst case.
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = generate_independent(n, 4);
  std::size_t nodes = 0;
  for (auto _ : state) {
    auto lat = Lattice::try_build(c, 1u << 22);
    if (!lat) {
      state.SkipWithError("over the node cap");
      return;
    }
    nodes = lat->size();
    benchmark::DoNotOptimize(lat);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["E"] = static_cast<double>(c.total_events());
}
BENCHMARK(BM_grid_lattice_build)->DenseRange(2, 8, 1);

void BM_random_lattice_build(benchmark::State& state) {
  // Messages prune the lattice but growth in n stays exponential.
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  GenOptions opt;
  opt.num_procs = n;
  opt.events_per_proc = 6;
  opt.p_send = 0.3;
  opt.seed = 123;
  Computation c = generate_random(opt);
  std::size_t nodes = 0;
  for (auto _ : state) {
    auto lat = Lattice::try_build(c, 1u << 22);
    if (!lat) {
      state.SkipWithError("over the node cap");
      return;
    }
    nodes = lat->size();
    benchmark::DoNotOptimize(lat);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["E"] = static_cast<double>(c.total_events());
}
BENCHMARK(BM_random_lattice_build)->DenseRange(2, 9, 1);

void BM_chain_lattice_build(benchmark::State& state) {
  // The other extreme: fully sequential computations have |E|+1 cuts.
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = generate_chain(n, 6);
  std::size_t nodes = 0;
  for (auto _ : state) {
    Lattice lat = Lattice::build(c);
    nodes = lat.size();
    benchmark::DoNotOptimize(lat);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_chain_lattice_build)->DenseRange(2, 9, 1);

void BM_observation_count(benchmark::State& state) {
  // Number of observations (maximal chains) — the other exponential the
  // paper's path-based operators quantify over.
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = generate_independent(n, 3);
  std::string count;
  for (auto _ : state) {
    Lattice lat = Lattice::build(c, 1u << 22);
    count = count_maximal_chains(lat).to_string();
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel("observations = " + count);
}
BENCHMARK(BM_observation_count)->DenseRange(2, 7, 1);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
