// Streaming service throughput: events/sec through the multi-tenant
// StreamingService with watches armed, prefix GC on vs off, and the
// watch-fire latency distribution. The BENCH_streaming.json artifact
// (schema hbct.bench/1) extends each row with a "streaming" object —
// throughput, peak residency, GC reclaim, and fire-latency percentiles —
// which tools/check_report.py validates in the bench-diff CI step.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "detect/until_inc.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "predicate/local.h"
#include "predicate/predicate.h"
#include "serve/service.h"

namespace hbct {
namespace {

using serve::SessionConfig;
using serve::SessionId;
using serve::SessionState;
using serve::StreamingService;

struct StreamPlan {
  int sessions = 8;
  std::int64_t rounds = 12'500;  // 2 events per round per session
  std::int64_t gc_interval = 4096;  // <= 0: GC off
  bool recorder = true;  // flight recorder enabled during the pass
  /// Arm until watches too: one deciding mid-stream, one whose q never
  /// holds, so the feed-time cost of the incremental evaluator is paid on
  /// every event of the stream (the per-event-overhead A/B).
  bool until_watch = false;
  bool until_inc = true;  // incremental until evaluator (vs batch decision)
};

struct StreamOutcome {
  std::int64_t events = 0;
  std::int64_t resident_peak = 0;
  std::int64_t gc_reclaimed = 0;
  std::int64_t gc_rounds = 0;
  std::int64_t until_inc_evals = 0;
  std::int64_t until_dec_evals = 0;
  std::uint64_t fire_p50_ns = 0;
  std::uint64_t fire_p99_ns = 0;
};

/// Pre-encodes one session's stream as chunks (the same bytes serve every
/// session: msg ids are per-session). ~1024 events per payload chunk so the
/// pumps run many times and the residency gauge gets real samples.
std::vector<std::string> build_chunks(std::int64_t rounds) {
  std::vector<std::string> chunks;
  {
    wire::Record procs;
    procs.kind = wire::Record::Kind::kProcs;
    procs.nprocs = 2;
    wire::Record var;
    var.kind = wire::Record::Kind::kVar;
    var.name = "x";
    std::string head;
    wire::encode_record(head, procs);
    wire::encode_record(head, var);
    chunks.push_back(std::move(head));
  }
  std::string chunk;
  for (std::int64_t r = 0; r < rounds; ++r) {
    wire::Record send;
    send.kind = wire::Record::Kind::kSend;
    send.proc = 0;
    send.peer = 1;
    send.msg = static_cast<std::uint64_t>(r);
    if (r % 32 == 0) send.writes.push_back({0, r});
    wire::encode_record(chunk, send);
    wire::Record recv;
    recv.kind = wire::Record::Kind::kRecv;
    recv.proc = 1;
    recv.msg = static_cast<std::uint64_t>(r);
    wire::encode_record(chunk, recv);
    if (r % 512 == 511) chunks.push_back(std::exchange(chunk, {}));
  }
  {
    wire::Record end;
    end.kind = wire::Record::Kind::kEnd;
    wire::encode_record(chunk, end);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

/// One full pass: open, stream, drain; outcome read off the tracer metrics.
void run_streams(const StreamPlan& plan, const std::vector<std::string>& chunks,
                 StreamOutcome* out) {
  FlightRecorder::global().set_enabled(plan.recorder);
  set_until_inc_enabled(plan.until_inc);
  Tracer tracer;
  serve::ServiceOptions opt;
  opt.trace = &tracer;
  StreamingService svc(opt);

  SessionConfig cfg;
  cfg.num_procs = 2;
  cfg.gc_interval_events = plan.gc_interval;
  const std::int64_t fire_at = plan.rounds;  // total events = 2*rounds
  const std::int64_t rounds = plan.rounds;
  std::vector<SessionId> sids;
  for (int k = 0; k < plan.sessions; ++k) {
    sids.push_back(svc.open(cfg, [&](OnlineMonitor& m) {
      m.var("x");
      // Fires mid-stream: the fire-latency histogram gets one sample per
      // session, and the undecided scan keeps the evaluators honest.
      m.watch_stable(make_stable(
          [fire_at](const Computation&, const Cut& g) {
            return g.total() >= fire_at;
          },
          "progress"));
      m.watch_possibly(make_conjunctive({var_cmp(0, "x", Cmp::kLt, 0),
                                         var_cmp(1, "x", Cmp::kLt, 0)}));
      if (plan.until_watch) {
        // One deciding mid-stream, one undecided to end of stream: the
        // second keeps the feed-time table advance on every event.
        m.watch_until(make_conjunctive({var_cmp(0, "x", Cmp::kGe, 0)}),
                      PredicatePtr(progress_ge(1, rounds / 2)));
        m.watch_until(make_conjunctive({var_cmp(0, "x", Cmp::kGe, 0)}),
                      PredicatePtr(progress_ge(1, rounds * 16)));
      }
    }));
  }
  for (const std::string& chunk : chunks)
    for (SessionId sid : sids) svc.post(sid, chunk);
  svc.drain();
  FlightRecorder::global().set_enabled(true);
  set_until_inc_enabled(true);

  if (out != nullptr) {
    out->events = 0;
    for (SessionId sid : sids) {
      if (svc.state(sid) != SessionState::kFinished) {
        std::fprintf(stderr, "session failed: %s\n", svc.error(sid).c_str());
        std::abort();
      }
      out->events += svc.stats(sid).events;
    }
    const MetricsSnapshot snap = tracer.metrics().snapshot();
    out->resident_peak = snap.gauges.at("serve.resident_events.peak");
    out->gc_reclaimed = static_cast<std::int64_t>(
        snap.counters.at("serve.gc.reclaimed_events"));
    out->gc_rounds =
        static_cast<std::int64_t>(snap.counters.at("serve.gc.rounds"));
    out->until_inc_evals =
        static_cast<std::int64_t>(snap.counters.at("serve.until.inc_evals"));
    out->until_dec_evals =
        static_cast<std::int64_t>(snap.counters.at("serve.until.dec_evals"));
    const Histogram::Snapshot fires =
        snap.histograms.at("serve.fire_latency.ns");
    out->fire_p50_ns = fires.percentile(0.5);
    out->fire_p99_ns = fires.percentile(0.99);
  }
}

void BM_streaming_service(benchmark::State& state) {
  StreamPlan plan;
  plan.sessions = static_cast<int>(state.range(0));
  plan.rounds = 5'000;
  plan.gc_interval = state.range(1);
  const auto chunks = build_chunks(plan.rounds);
  for (auto _ : state) run_streams(plan, chunks, nullptr);
  state.SetItemsProcessed(state.iterations() * plan.sessions * plan.rounds * 2);
}
BENCHMARK(BM_streaming_service)
    ->Args({8, 4096})
    ->Args({8, 0})
    ->Args({32, 4096});

// ---- BENCH_streaming.json ------------------------------------------------------

struct StreamingRow {
  benchio::BenchRow base;
  StreamPlan plan;
  StreamOutcome outcome;
};

bool emit_streaming_json(const char* path) {
  struct Config {
    const char* name;
    const char* label;
    StreamPlan plan;
  };
  const Config configs[] = {
      {"streaming/8x25k/nogc", "8 sessions x 25k events, gc off",
       {8, 12'500, 0, true}},
      {"streaming/32x5k/gc", "32 sessions x 5k events, gc every 1024",
       {32, 2'500, 1024, true}},
  };

  std::vector<StreamingRow> rows;

  // Flight-recorder A/B on the flagship config, passes interleaved so
  // drift and allocator state land on both sides equally (separate timing
  // blocks show spread far above the gating overhead being measured).
  {
    StreamPlan rec{8, 12'500, 4096, true};
    StreamPlan norec = rec;
    norec.recorder = false;
    const auto chunks = build_chunks(rec.rounds);
    StreamingRow rrow, nrow;
    rrow.base.name = "streaming/8x25k/gc";
    rrow.base.label = "8 sessions x 25k events, gc every 4096";
    rrow.plan = rec;
    nrow.base.name = "streaming/8x25k/gc/norec";
    nrow.base.label =
        "8 sessions x 25k events, gc every 4096, flight recorder off";
    nrow.plan = norec;
    run_streams(rec, chunks, nullptr);  // warmup
    run_streams(norec, chunks, nullptr);
    std::vector<double> rec_ns, norec_ns;
    for (int i = 0; i < 9; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      run_streams(rec, chunks, &rrow.outcome);
      auto t1 = std::chrono::steady_clock::now();
      run_streams(norec, chunks, &nrow.outcome);
      auto t2 = std::chrono::steady_clock::now();
      rec_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      norec_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
              .count()));
    }
    rrow.base.ns = Summary::of(std::move(rec_ns));
    nrow.base.ns = Summary::of(std::move(norec_ns));
    rows.push_back(std::move(rrow));
    rows.push_back(std::move(nrow));
  }

  // Until-watch A/B: incremental evaluator on vs off on an otherwise
  // identical stream, passes interleaved. This is the per-event feed
  // overhead of the amortized EG table: one watch stays undecided to end
  // of stream, so the inc side pays its table advance on every event. GC
  // off on both sides — a batch until watch pins the whole prefix, and
  // asymmetric reclaim work would contaminate the comparison.
  {
    StreamPlan inc{8, 12'500, 0, true, true, true};
    StreamPlan batch = inc;
    batch.until_inc = false;
    const auto chunks = build_chunks(inc.rounds);
    StreamingRow irow, brow;
    irow.base.name = "streaming/8x25k/until/inc";
    irow.base.label = "8 sessions x 25k events, until watches, incremental";
    irow.plan = inc;
    brow.base.name = "streaming/8x25k/until/batch";
    brow.base.label = "8 sessions x 25k events, until watches, batch decision";
    brow.plan = batch;
    run_streams(inc, chunks, nullptr);  // warmup
    run_streams(batch, chunks, nullptr);
    std::vector<double> inc_ns, batch_ns;
    for (int i = 0; i < 9; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      run_streams(inc, chunks, &irow.outcome);
      auto t1 = std::chrono::steady_clock::now();
      run_streams(batch, chunks, &brow.outcome);
      auto t2 = std::chrono::steady_clock::now();
      inc_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      batch_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
              .count()));
    }
    irow.base.ns = Summary::of(std::move(inc_ns));
    brow.base.ns = Summary::of(std::move(batch_ns));
    rows.push_back(std::move(irow));
    rows.push_back(std::move(brow));
  }

  for (const Config& c : configs) {
    const auto chunks = build_chunks(c.plan.rounds);
    StreamingRow row;
    row.base.name = c.name;
    row.base.label = c.label;
    row.plan = c.plan;
    row.base.ns = benchio::time_ns(
        7, [&] { run_streams(c.plan, chunks, &row.outcome); });
    rows.push_back(std::move(row));
  }

  JsonWriter w;
  w.begin_object();
  w.kv("schema", benchio::kBenchSchema);
  w.kv("bench", "streaming");
  w.key("rows").begin_array();
  for (const StreamingRow& r : rows) {
    w.begin_object();
    w.kv("name", r.base.name);
    w.kv("label", r.base.label);
    w.kv("iters", static_cast<std::uint64_t>(r.base.ns.count));
    w.key("ns");
    benchio::write_summary(w, r.base.ns);
    w.key("report").raw("null");
    w.key("streaming").begin_object();
    w.kv("sessions", static_cast<std::uint64_t>(r.plan.sessions));
    w.kv("gc_interval_events",
         static_cast<std::int64_t>(r.plan.gc_interval));
    w.kv("events", static_cast<std::int64_t>(r.outcome.events));
    // Throughput at the median pass: events over median wall time.
    w.kv("events_per_sec",
         r.base.ns.median > 0
             ? static_cast<double>(r.outcome.events) * 1e9 / r.base.ns.median
             : 0.0);
    w.kv("resident_peak", r.outcome.resident_peak);
    w.kv("gc_reclaimed_events", r.outcome.gc_reclaimed);
    w.kv("gc_rounds", r.outcome.gc_rounds);
    w.kv("fire_p50_ns", r.outcome.fire_p50_ns);
    w.kv("fire_p99_ns", r.outcome.fire_p99_ns);
    w.kv("recorder", r.plan.recorder);
    w.kv("until_watch", r.plan.until_watch);
    w.kv("until_inc", r.plan.until_inc);
    w.kv("until_inc_evals", r.outcome.until_inc_evals);
    w.kv("until_dec_evals", r.outcome.until_dec_evals);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string doc = w.take();
  std::string err;
  if (!json_validate(doc, &err)) {
    std::fprintf(stderr, "bench json invalid: %s\n", err.c_str());
    return false;
  }
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path, rows.size());
  return true;
}

}  // namespace
}  // namespace hbct

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* out = std::getenv("HBCT_BENCH_JSON");
  return hbct::emit_streaming_json(out != nullptr ? out
                                                  : "BENCH_streaming.json")
             ? 0
             : 1;
}
