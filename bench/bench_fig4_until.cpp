// Fig. 4 reproduction: the E[p U q] example, exact and scaled.
//
// First regenerates the figure's numbers (13-cut lattice, 7 witness
// prefixes, 2 through I_q), then scales the same shape — a producer chain
// whose q is "channels empty and progress past a threshold" — comparing A3
// against brute-force EU on the lattice.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

Computation fig4() {
  ComputationBuilder b(3);
  VarId x = b.var("x"), z = b.var("z");
  b.set_initial(0, x, 1);
  b.set_initial(2, z, 3);
  MsgId m1 = b.send(0, 1);
  b.write(0, x, 2);
  b.internal(0);
  b.write(0, x, 3);
  MsgId m2 = b.send(1, 2);
  b.receive(1, m1);
  b.receive(2, m2);
  b.write(2, z, 6);
  return std::move(b).build();
}

void BM_fig4_exact_counts(benchmark::State& state) {
  Computation c = fig4();
  auto p = make_conjunctive(
      {var_cmp(2, "z", Cmp::kLt, 6), var_cmp(0, "x", Cmp::kLt, 4)});
  auto q = make_and(all_channels_empty(),
                    PredicatePtr(var_cmp(0, "x", Cmp::kGt, 1)));
  Lattice lat = Lattice::build(c);
  BigUint total, at_iq;
  for (auto _ : state) {
    const NodeId iq = lat.node_of(Cut({1, 2, 1}));
    total = count_eu_witnesses(
        lat, [&](NodeId v) { return p->eval(c, lat.cut(v)); },
        [&](NodeId v) { return q->eval(c, lat.cut(v)); }, iq, &at_iq);
    benchmark::DoNotOptimize(total);
  }
  state.counters["lattice"] = static_cast<double>(lat.size());
  state.SetLabel("witnesses=" + total.to_string() + " via I_q=" +
                 at_iq.to_string() + " (paper: 7 / 2)");
}
BENCHMARK(BM_fig4_exact_counts);

void BM_fig4_a3(benchmark::State& state) {
  Computation c = fig4();
  auto p = make_conjunctive(
      {var_cmp(2, "z", Cmp::kLt, 6), var_cmp(0, "x", Cmp::kLt, 4)});
  auto q = make_and(all_channels_empty(),
                    PredicatePtr(var_cmp(0, "x", Cmp::kGt, 1)));
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.SetLabel(last.holds() ? "holds, I_q = " + last.witness_cut->to_string()
                            : "fails");
}
BENCHMARK(BM_fig4_a3);

// ---- Scaled variant -------------------------------------------------------------

/// Fig. 4's shape at size k: P0 ticks a counter and messages P1, P1 relays
/// to P2, P2 accumulates. q = channels empty ∧ x past a threshold; p = both
/// accumulators still under their limits.
Computation scaled(std::int32_t k, std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = 3;
  opt.events_per_proc = k;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.seed = seed;
  return generate_random(opt);
}

void BM_a3_scaled(benchmark::State& state) {
  const std::int32_t k = static_cast<std::int32_t>(state.range(0));
  Computation c = scaled(k, 17);
  auto p = make_conjunctive(
      {var_cmp(0, "v0", Cmp::kLe, 9), var_cmp(2, "v1", Cmp::kLe, 9)});
  auto q = make_and(all_channels_empty(),
                    PredicatePtr(progress_ge(0, k / 2)));
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.counters["E"] = static_cast<double>(c.total_events());
  state.SetLabel(last.holds() ? "holds" : "fails");
}
BENCHMARK(BM_a3_scaled)->RangeMultiplier(4)->Range(8, 8192);

void BM_lattice_eu_scaled(benchmark::State& state) {
  const std::int32_t k = static_cast<std::int32_t>(state.range(0));
  Computation c = scaled(k, 17);
  auto p = make_conjunctive(
      {var_cmp(0, "v0", Cmp::kLe, 9), var_cmp(2, "v1", Cmp::kLe, 9)});
  PredicatePtr q = make_and(all_channels_empty(),
                            PredicatePtr(progress_ge(0, k / 2)));
  auto lat = Lattice::try_build(c, 1u << 21);
  if (!lat) {
    state.SkipWithError("lattice exceeds the node cap");
    return;
  }
  LatticeChecker chk(std::move(*lat));
  DetectResult last;
  for (auto _ : state) last = chk.detect(Op::kEU, *p, q.get());
  state.counters["nodes"] = static_cast<double>(chk.lattice().size());
  state.SetLabel(last.holds() ? "holds" : "fails");
}
BENCHMARK(BM_lattice_eu_scaled)->RangeMultiplier(4)->Range(8, 512);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
