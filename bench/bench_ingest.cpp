// Ingestion throughput: loading the same computation from its three wire
// forms — canonical text, btrace, and hbct-mtrace (zero-copy mmap view and
// materializing copy) — at production scale (the headline config is the
// 1M-event / 128-proc corpus alltoall). The BENCH_ingest.json artifact
// (schema hbct.bench/1) extends each row with an "ingest" object — format,
// events, input bytes, events/sec, and speedup over the text parse — which
// tools/check_report.py validates in the bench-diff CI step.
//
// The artifact pass doubles as the acceptance gate for the zero-copy
// loader: at the 1M-event size the mmap load must be >= 10x faster than
// the text parse, or the binary exits nonzero.
#include <benchmark/benchmark.h>
#include <malloc.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "corpus/scenario.h"
#include "obs/json.h"
#include "poset/mtrace.h"
#include "poset/trace_io.h"

namespace hbct {
namespace {

/// One computation serialized every way the loaders accept.
struct IngestFixture {
  std::int64_t events = 0;
  std::string text;
  std::string btrace;
  std::string mtrace;      // in-memory bytes (mtrace_from_bytes)
  std::string mtrace_path; // on-disk copy (load_mtrace, both modes)
};

/// procs * rounds * 2 events: the alltoall ring exchange from the corpus.
IngestFixture build_fixture(std::int32_t procs, std::int32_t rounds,
                            const char* tag) {
  corpus::CorpusOptions o;
  o.procs = procs;
  o.scale = rounds;
  const Computation c = corpus::mpi_alltoall(o).computation;

  IngestFixture f;
  f.events = c.total_events();
  f.text = trace_to_string(c);
  f.btrace = trace_to_binary_string(c);
  f.mtrace = mtrace_to_string(c);
  f.mtrace_path =
      (std::filesystem::temp_directory_path() /
       (std::string("hbct_bench_ingest_") + tag + ".mtrace"))
          .string();
  std::string err;
  if (!write_mtrace_file(f.mtrace_path, c, &err)) {
    std::fprintf(stderr, "write_mtrace_file(%s): %s\n", f.mtrace_path.c_str(),
                 err.c_str());
    std::abort();
  }
  return f;
}

std::int64_t load_text(const IngestFixture& f) {
  const TraceParseResult r = trace_from_string(f.text);
  if (!r.ok) std::abort();
  return r.computation.total_events();
}

std::int64_t load_btrace(const IngestFixture& f) {
  const TraceParseResult r = trace_from_binary_string(f.btrace);
  if (!r.ok) std::abort();
  return r.computation.total_events();
}

std::int64_t load_map(const IngestFixture& f) {
  MtraceLoadResult r = load_mtrace(f.mtrace_path, MtraceMode::kMap);
  if (!r.ok) std::abort();
  return r.computation.total_events();
}

std::int64_t load_copy(const IngestFixture& f) {
  MtraceLoadResult r = load_mtrace(f.mtrace_path, MtraceMode::kCopy);
  if (!r.ok) std::abort();
  return r.computation.total_events();
}

std::int64_t read_vm_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmRSS:") {
      std::int64_t kb = 0;
      in >> kb;
      return kb;
    }
    in.ignore(1024, '\n');
  }
  return 0;
}

/// Approximate residency cost of holding one loaded computation: VmRSS
/// delta around a load, with the heap trimmed back to the OS first so the
/// allocator cannot hide the growth in previously-freed arenas. For the
/// mmap view this counts the (reclaimable, file-backed) mapped pages the
/// validation scan faulted in; for the owning loads it is the private
/// arena. Noisy at small sizes, directionally solid at 1M events.
std::int64_t rss_delta_kb(std::int64_t (*load)(const IngestFixture&),
                          const IngestFixture& f) {
  malloc_trim(0);
  const std::int64_t before = read_vm_rss_kb();
  std::int64_t after = before;
  {
    MtraceLoadResult held_mtrace;  // keep whichever load result alive
    TraceParseResult held_parse;
    if (load == load_map || load == load_copy) {
      held_mtrace = load_mtrace(f.mtrace_path, load == load_map
                                                   ? MtraceMode::kMap
                                                   : MtraceMode::kCopy);
      if (!held_mtrace.ok) std::abort();
    } else {
      held_parse = load == load_text ? trace_from_string(f.text)
                                     : trace_from_binary_string(f.btrace);
      if (!held_parse.ok) std::abort();
    }
    after = read_vm_rss_kb();
  }
  malloc_trim(0);
  return after > before ? after - before : 0;
}

// ---- console benchmarks ----------------------------------------------------

const IngestFixture& console_fixture() {
  static const IngestFixture f = build_fixture(32, 1563, "console");
  return f;
}

void BM_ingest_text(benchmark::State& state) {
  const IngestFixture& f = console_fixture();
  for (auto _ : state) benchmark::DoNotOptimize(load_text(f));
  state.SetItemsProcessed(state.iterations() * f.events);
}
BENCHMARK(BM_ingest_text);

void BM_ingest_btrace(benchmark::State& state) {
  const IngestFixture& f = console_fixture();
  for (auto _ : state) benchmark::DoNotOptimize(load_btrace(f));
  state.SetItemsProcessed(state.iterations() * f.events);
}
BENCHMARK(BM_ingest_btrace);

void BM_ingest_mtrace_map(benchmark::State& state) {
  const IngestFixture& f = console_fixture();
  for (auto _ : state) benchmark::DoNotOptimize(load_map(f));
  state.SetItemsProcessed(state.iterations() * f.events);
}
BENCHMARK(BM_ingest_mtrace_map);

void BM_ingest_mtrace_copy(benchmark::State& state) {
  const IngestFixture& f = console_fixture();
  for (auto _ : state) benchmark::DoNotOptimize(load_copy(f));
  state.SetItemsProcessed(state.iterations() * f.events);
}
BENCHMARK(BM_ingest_mtrace_copy);

// ---- BENCH_ingest.json -----------------------------------------------------

struct IngestRow {
  benchio::BenchRow base;
  const char* format;
  std::int64_t events = 0;
  std::uint64_t input_bytes = 0;
  std::int64_t rss_delta_kb = 0;
  double speedup_vs_text = 1.0;
};

bool emit_ingest_json(const char* path) {
  struct Size {
    const char* tag;
    std::int32_t procs;
    std::int32_t rounds;
    int text_iters;  // the slow loads get fewer self-timed passes
    bool headline;   // enforce the 10x zero-copy gate here
  };
  // 2 * procs * rounds events: 100,032 and the 1,000,192-event headline.
  const Size sizes[] = {
      {"alltoall100k", 32, 1563, 5, false},
      {"alltoall1m", 128, 3907, 3, true},
  };

  std::vector<IngestRow> rows;
  bool gate_ok = true;
  for (const Size& sz : sizes) {
    const IngestFixture f = build_fixture(sz.procs, sz.rounds, sz.tag);
    const auto bytes_of = [&](const char* fmt) -> std::uint64_t {
      if (fmt == std::string("text")) return f.text.size();
      if (fmt == std::string("btrace")) return f.btrace.size();
      return f.mtrace.size();  // both mtrace modes read the same file
    };
    struct Fmt {
      const char* name;
      std::int64_t (*load)(const IngestFixture&);
      int iters;
    };
    const Fmt fmts[] = {
        {"text", load_text, sz.text_iters},
        {"btrace", load_btrace, sz.text_iters + 2},
        {"mtrace-copy", load_copy, sz.text_iters + 2},
        {"mtrace-map", load_map, 15},
    };
    double text_median = 0.0;
    for (const Fmt& fmt : fmts) {
      IngestRow row;
      row.base.name =
          std::string("ingest/") + sz.tag + "/" + fmt.name;
      row.base.label = std::to_string(f.events) + " events, " +
                       std::to_string(sz.procs) + " procs, " + fmt.name;
      row.format = fmt.name;
      row.events = f.events;
      row.input_bytes = bytes_of(fmt.name);
      row.rss_delta_kb = rss_delta_kb(fmt.load, f);
      row.base.ns = benchio::time_ns(fmt.iters, [&] {
        benchmark::DoNotOptimize(fmt.load(f));
      });
      if (fmt.name == std::string("text")) text_median = row.base.ns.median;
      row.speedup_vs_text =
          row.base.ns.median > 0 ? text_median / row.base.ns.median : 0.0;
      if (sz.headline && fmt.name == std::string("mtrace-map") &&
          row.speedup_vs_text < 10.0) {
        std::fprintf(stderr,
                     "FAIL: zero-copy load of %lld events is only %.1fx "
                     "faster than the text parse (need >= 10x)\n",
                     static_cast<long long>(f.events), row.speedup_vs_text);
        gate_ok = false;
      }
      rows.push_back(std::move(row));
    }
    std::error_code ec;
    std::filesystem::remove(f.mtrace_path, ec);
  }

  JsonWriter w;
  w.begin_object();
  w.kv("schema", benchio::kBenchSchema);
  w.kv("bench", "ingest");
  w.key("rows").begin_array();
  for (const IngestRow& r : rows) {
    w.begin_object();
    w.kv("name", r.base.name);
    w.kv("label", r.base.label);
    w.kv("iters", static_cast<std::uint64_t>(r.base.ns.count));
    w.key("ns");
    benchio::write_summary(w, r.base.ns);
    w.key("report").raw("null");
    w.key("ingest").begin_object();
    w.kv("format", r.format);
    w.kv("events", r.events);
    w.kv("input_bytes", r.input_bytes);
    w.kv("rss_delta_kb", r.rss_delta_kb);
    w.kv("events_per_sec",
         r.base.ns.median > 0
             ? static_cast<double>(r.events) * 1e9 / r.base.ns.median
             : 0.0);
    w.kv("speedup_vs_text", r.speedup_vs_text);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string doc = w.take();
  std::string err;
  if (!json_validate(doc, &err)) {
    std::fprintf(stderr, "bench json invalid: %s\n", err.c_str());
    return false;
  }
  std::FILE* out = std::fopen(path, "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path, rows.size());
  return gate_ok;
}

}  // namespace
}  // namespace hbct

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* out = std::getenv("HBCT_BENCH_JSON");
  return hbct::emit_ingest_json(out != nullptr ? out : "BENCH_ingest.json")
             ? 0
             : 1;
}
