// Simulator substrate throughput: events per second for each workload and
// scheduler, plus trace serialization cost.
#include <benchmark/benchmark.h>

#include <sstream>

#include "hbct.h"

namespace hbct {
namespace {

using sim::SchedulerKind;

void run_workload(benchmark::State& state,
                  const std::function<sim::Simulator()>& make,
                  SchedulerKind sched) {
  sim::SimOptions opt;
  opt.scheduler = sched;
  std::int64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    sim::Simulator s = make();
    Computation c = std::move(s).run(opt);
    events += c.total_events();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(events);
}

void BM_sim_token_mutex(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  run_workload(state, [n] { return sim::make_token_mutex(n, 4, false); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_token_mutex)->Arg(4)->Arg(16)->Arg(64);

void BM_sim_ra_mutex(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  run_workload(state, [n] { return sim::make_ra_mutex(n, 2); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_ra_mutex)->Arg(4)->Arg(8)->Arg(16);

void BM_sim_leader_election(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  run_workload(state, [n] { return sim::make_leader_election(n); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_leader_election)->Arg(8)->Arg(32)->Arg(128);

void BM_sim_producer_consumer(benchmark::State& state) {
  const std::int32_t items = static_cast<std::int32_t>(state.range(0));
  run_workload(state,
               [items] { return sim::make_producer_consumer(items, 8); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_producer_consumer)->Arg(100)->Arg(1000);

void BM_sim_barrier(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  run_workload(state, [n] { return sim::make_barrier(n, 8); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_barrier)->Arg(4)->Arg(16)->Arg(64);

void BM_sim_dining(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  run_workload(state, [n] { return sim::make_dining_philosophers(n, 2, true); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_dining)->Arg(4)->Arg(16);

void BM_sim_two_phase_commit(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  run_workload(state,
               [n] { return sim::make_two_phase_commit(n, 4, 0.3, false); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_two_phase_commit)->Arg(4)->Arg(16);

void BM_sim_chandy_lamport(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  run_workload(state, [n] { return sim::make_chandy_lamport(n, 20, 8); },
               SchedulerKind::kRandom);
}
BENCHMARK(BM_sim_chandy_lamport)->Arg(4)->Arg(16);

void BM_sim_mixer_schedulers(benchmark::State& state) {
  const auto kind = static_cast<SchedulerKind>(state.range(0));
  run_workload(state, [] { return sim::make_random_mixer(8, 200, 2, 0.4); },
               kind);
}
BENCHMARK(BM_sim_mixer_schedulers)
    ->Arg(static_cast<int>(SchedulerKind::kRandom))
    ->Arg(static_cast<int>(SchedulerKind::kRoundRobin))
    ->Arg(static_cast<int>(SchedulerKind::kDelayBiased));

void BM_trace_roundtrip(benchmark::State& state) {
  const std::int32_t per = static_cast<std::int32_t>(state.range(0));
  GenOptions opt;
  opt.num_procs = 8;
  opt.events_per_proc = per;
  opt.seed = 31;
  Computation c = generate_random(opt);
  for (auto _ : state) {
    const std::string text = trace_to_string(c);
    auto parsed = trace_from_string(text);
    benchmark::DoNotOptimize(parsed.computation);
  }
  state.SetItemsProcessed(state.iterations() * c.total_events());
}
BENCHMARK(BM_trace_roundtrip)->Arg(64)->Arg(512);

void BM_vclock_finalize(benchmark::State& state) {
  // Cost of computing forward + reverse clocks and all tables.
  const std::int32_t per = static_cast<std::int32_t>(state.range(0));
  GenOptions opt;
  opt.num_procs = 16;
  opt.events_per_proc = per;
  opt.seed = 77;
  for (auto _ : state) {
    Computation c = generate_random(opt);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 16 * per);
}
BENCHMARK(BM_vclock_finalize)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
