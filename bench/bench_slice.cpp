// Computation slicing cost: building the slice of a regular predicate and
// answering membership queries from it, vs direct evaluation.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

Computation make_comp(std::int32_t events_per_proc) {
  GenOptions opt;
  opt.num_procs = 6;
  opt.events_per_proc = events_per_proc;
  opt.p_send = 0.3;
  opt.seed = 19;
  return generate_random(opt);
}

void BM_slice_build(benchmark::State& state) {
  Computation c = make_comp(static_cast<std::int32_t>(state.range(0)));
  PredicatePtr p = all_channels_empty();
  std::size_t elems = 0;
  for (auto _ : state) {
    Slice s = Slice::compute(c, p);
    elems = s.elements().size();
    benchmark::DoNotOptimize(s);
  }
  state.counters["elements"] = static_cast<double>(elems);
  state.counters["E"] = static_cast<double>(c.total_events());
}
BENCHMARK(BM_slice_build)->RangeMultiplier(4)->Range(16, 1024);

void BM_slice_membership(benchmark::State& state) {
  Computation c = make_comp(static_cast<std::int32_t>(state.range(0)));
  PredicatePtr p = all_channels_empty();
  Slice s = Slice::compute(c, p);
  const Cut g = c.final_cut();
  for (auto _ : state) {
    bool in = s.satisfies(g);
    benchmark::DoNotOptimize(in);
  }
}
BENCHMARK(BM_slice_membership)->RangeMultiplier(4)->Range(16, 1024);

void BM_direct_membership(benchmark::State& state) {
  Computation c = make_comp(static_cast<std::int32_t>(state.range(0)));
  PredicatePtr p = all_channels_empty();
  const Cut g = c.final_cut();
  for (auto _ : state) {
    bool in = p->eval(c, g);
    benchmark::DoNotOptimize(in);
  }
}
BENCHMARK(BM_direct_membership)->RangeMultiplier(4)->Range(16, 1024);

void BM_slice_conjunctive(benchmark::State& state) {
  Computation c = make_comp(static_cast<std::int32_t>(state.range(0)));
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < 6; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 7));
  PredicatePtr p = make_conjunctive(std::move(ls));
  std::size_t elems = 0;
  for (auto _ : state) {
    Slice s = Slice::compute(c, p);
    elems = s.elements().size();
    benchmark::DoNotOptimize(s);
  }
  state.counters["elements"] = static_cast<double>(elems);
}
BENCHMARK(BM_slice_conjunctive)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
