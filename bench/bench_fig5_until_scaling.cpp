// Fig. 5 (Algorithm A3) complexity reproduction: E[p U q] in O(n|E|), and
// the A[p U q] identity at O(n|E|) (Section 7's closing analysis).
//
// Sweeps |E| at fixed n and n at fixed |E|; the evals counter should grow
// linearly in |E| and (sub)linearly in n per event — the log-log slopes are
// summarized by bench_scaling's regression too.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

Computation make_comp(std::int32_t procs, std::int32_t events_per_proc,
                      std::uint64_t seed) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events_per_proc;
  opt.num_vars = 2;
  opt.p_send = 0.25;
  opt.seed = seed;
  return generate_random(opt);
}

void BM_eu_events(benchmark::State& state) {
  const std::int32_t per = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(6, per, 5);
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < 6; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  auto p = make_conjunctive(std::move(ls));
  PredicatePtr q =
      make_and(all_channels_empty(), PredicatePtr(progress_ge(3, per / 2)));
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.counters["E"] = static_cast<double>(c.total_events());
}
BENCHMARK(BM_eu_events)->RangeMultiplier(4)->Range(16, 4096);

void BM_eu_procs(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(n, 960 / n, 7);
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < n; ++i) ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  auto p = make_conjunctive(std::move(ls));
  PredicatePtr q = make_and(all_channels_empty(),
                            PredicatePtr(progress_ge(0, 960 / n / 2)));
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
}
BENCHMARK(BM_eu_procs)->DenseRange(2, 10, 2)->Arg(16)->Arg(32);

void BM_au_events(benchmark::State& state) {
  const std::int32_t per = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(6, per, 9);
  std::vector<LocalPredicatePtr> ps, qs;
  for (ProcId i = 0; i < 6; ++i) {
    ps.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
    qs.push_back(var_cmp(i, "v1", Cmp::kGe, 1));
  }
  auto p = make_disjunctive(std::move(ps));
  auto q = make_disjunctive(std::move(qs));
  DetectResult last;
  for (auto _ : state) last = detect_au_disjunctive(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
  state.counters["E"] = static_cast<double>(c.total_events());
}
BENCHMARK(BM_au_events)->RangeMultiplier(4)->Range(16, 4096);

void BM_au_procs(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(n, 960 / n, 15);
  std::vector<LocalPredicatePtr> ps, qs;
  for (ProcId i = 0; i < n; ++i) {
    ps.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
    qs.push_back(var_cmp(i, "v1", Cmp::kGe, 1));
  }
  auto p = make_disjunctive(std::move(ps));
  auto q = make_disjunctive(std::move(qs));
  DetectResult last;
  for (auto _ : state) last = detect_au_disjunctive(c, *p, *q);
  state.counters["evals"] = static_cast<double>(last.stats.predicate_evals);
}
BENCHMARK(BM_au_procs)->DenseRange(2, 10, 2)->Arg(16)->Arg(32);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
