// Fig. 2 reproduction: Birkhoff's representation in the large.
//
// Measures (a) the O(n|E|) direct extraction of meet-irreducibles from
// reverse vector clocks, (b) cover-degree extraction on the explicit
// lattice, and (c) the |M(L)| vs |L| gap ("generally exponentially
// smaller") that makes Algorithm A2 pay off.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

Computation make_comp(std::int32_t procs, std::int32_t events_per_proc) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events_per_proc;
  opt.p_send = 0.3;
  opt.seed = 22;
  return generate_random(opt);
}

void BM_direct_meet_irreducibles(benchmark::State& state) {
  const std::int32_t per = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(6, per);
  std::size_t count = 0;
  for (auto _ : state) {
    auto cuts = meet_irreducible_cuts(c);
    count = cuts.size();
    benchmark::DoNotOptimize(cuts);
  }
  state.counters["M"] = static_cast<double>(count);
  state.counters["E"] = static_cast<double>(c.total_events());
}
BENCHMARK(BM_direct_meet_irreducibles)->RangeMultiplier(4)->Range(16, 4096);

void BM_lattice_meet_irreducibles(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(n, 24 / n);
  auto lat = Lattice::try_build(c, 1u << 22);
  if (!lat) {
    state.SkipWithError("lattice exceeds the node cap");
    return;
  }
  std::size_t count = 0;
  for (auto _ : state) {
    auto nodes = meet_irreducibles(*lat);
    count = nodes.size();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["M"] = static_cast<double>(count);
  state.counters["L"] = static_cast<double>(lat->size());
}
BENCHMARK(BM_lattice_meet_irreducibles)->DenseRange(2, 8, 1);

void BM_birkhoff_reconstruction(benchmark::State& state) {
  // Reconstruct every lattice element from its meet-irreducibles
  // (Corollary 4), validating the Fig. 2 equations at scale.
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = make_comp(n, 18 / n);
  Lattice lat = Lattice::build(c, 1u << 20);
  std::size_t mismatches = 0;
  for (auto _ : state) {
    mismatches = 0;
    for (NodeId v = 0; v < lat.size(); ++v)
      mismatches += !(birkhoff_meet_reconstruction(c, lat.cut(v)) == lat.cut(v));
    benchmark::DoNotOptimize(mismatches);
  }
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["L"] = static_cast<double>(lat.size());
}
BENCHMARK(BM_birkhoff_reconstruction)->DenseRange(2, 6, 1);

void BM_m_vs_l_gap(benchmark::State& state) {
  // The computational point: |M(L)| = |E| stays linear while |L| explodes.
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Computation c = generate_independent(n, 4);
  auto lat = Lattice::try_build(c, 1u << 22);
  for (auto _ : state) {
    auto cuts = meet_irreducible_cuts(c);
    benchmark::DoNotOptimize(cuts);
  }
  state.counters["M"] = static_cast<double>(c.total_events());
  state.counters["L"] =
      lat ? static_cast<double>(lat->size()) : -1.0;  // -1: over the cap
}
BENCHMARK(BM_m_vs_l_gap)->DenseRange(2, 9, 1);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
