// Table 1 reproduction: one benchmark per (predicate class, operator) cell.
//
// The paper's Table 1 is an algorithm map, not a timing table; what this
// bench regenerates is its computational content: for each cell the
// dispatched algorithm and its cost on a common workload. Polynomial cells
// run on a 6-process, 1200-event random computation; the provably hard
// cells (EG/AG of observer-independent, arbitrary predicates) run on small
// hardness gadgets, and their exponential growth is bench_fig3_npc's job.
//
// Counters: evals = predicate evaluations, steps = cut advancements.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_report.h"
#include "hbct.h"

namespace hbct {
namespace {

constexpr std::int32_t kProcs = 6;
constexpr std::int32_t kEventsPerProc = 200;

const Computation& workload() {
  static const Computation c = [] {
    GenOptions opt;
    opt.num_procs = kProcs;
    opt.events_per_proc = kEventsPerProc;
    opt.num_vars = 2;
    opt.seed = 2002;
    return generate_random(opt);
  }();
  return c;
}

void report(benchmark::State& state, const DetectResult& r) {
  state.counters["evals"] = static_cast<double>(r.stats.predicate_evals);
  state.counters["steps"] = static_cast<double>(r.stats.cut_steps);
  state.SetLabel(r.algorithm + (r.holds() ? " -> true" : " -> false"));
}

PredicatePtr conjunctive_pred() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kProcs; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, 8));
  return make_conjunctive(std::move(ls));
}

PredicatePtr disjunctive_pred() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kProcs; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kEq, 7));
  return make_disjunctive(std::move(ls));
}

PredicatePtr stable_pred() { return make_terminated(); }

// The linear/regular rows use per-operator predicates so every algorithm
// does representative work: EF needs a predicate that is initially false
// (the walk advances), EG/AG need one satisfied everywhere (full walk /
// full meet-irreducible scan). All are linear-but-not-conjunctive, so the
// dispatcher cannot reroute to the conjunctive scans.
PredicatePtr linear_pred_for(Op op) {
  PredicatePtr chan = channel_bound_le(0, 1, 1 << 20);  // always true
  if (op == Op::kEF || op == Op::kAF)
    return make_and(PredicatePtr(progress_ge(0, kEventsPerProc / 2)), chan);
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kProcs; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));  // always true
  return make_and(make_conjunctive(std::move(ls)), chan);
}

PredicatePtr regular_pred_for(Op op) {
  // A channel bound with a realistic window; initially true, violated when
  // the channel fills past 2.
  if (op == Op::kEF || op == Op::kAF) return channel_bound_ge(0, 1, 1);
  return channel_bound_le(0, 1, 2);
}

PredicatePtr oi_pred() {
  // Holds initially, otherwise structureless: OI by the initial-cut rule.
  return make_asserted(
      [](const Computation& c, const Cut& g) {
        return g.total() == 0 || c.value_in(0, 0, g) > 9;
      },
      kClassObserverIndependent, "oi-gadget");
}

PredicatePtr arbitrary_pred() {
  return make_asserted(
      [](const Computation&, const Cut& g) { return g.total() % 2 == 0; }, 0,
      "parity");
}

template <typename MakePred>
void run_cell(benchmark::State& state, Op op, MakePred make,
              const Computation& c) {
  PredicatePtr p = make();
  DetectResult last;
  for (auto _ : state) last = detect(c, op, p);
  report(state, last);
}

// ---- Polynomial rows ---------------------------------------------------------

#define HBCT_CELL(row, maker)                                             \
  void BM_##row##_EF(benchmark::State& s) {                              \
    run_cell(s, Op::kEF, maker, workload());                             \
  }                                                                       \
  void BM_##row##_AF(benchmark::State& s) {                              \
    run_cell(s, Op::kAF, maker, workload());                             \
  }                                                                       \
  void BM_##row##_EG(benchmark::State& s) {                              \
    run_cell(s, Op::kEG, maker, workload());                             \
  }                                                                       \
  void BM_##row##_AG(benchmark::State& s) {                              \
    run_cell(s, Op::kAG, maker, workload());                             \
  }                                                                       \
  BENCHMARK(BM_##row##_EF);                                               \
  BENCHMARK(BM_##row##_AF);                                               \
  BENCHMARK(BM_##row##_EG);                                               \
  BENCHMARK(BM_##row##_AG)

HBCT_CELL(conjunctive, conjunctive_pred);
HBCT_CELL(disjunctive, disjunctive_pred);
HBCT_CELL(stable, stable_pred);

#undef HBCT_CELL

// AF of a general linear/regular predicate is an *open problem* in the
// paper (Table 1); our dispatcher falls back to explicit search, so those
// two cells run on the small workload defined below.
const Computation& small_workload();

#define HBCT_CELL_PER_OP(row, maker)                                      \
  void BM_##row##_EF(benchmark::State& s) {                              \
    run_cell(s, Op::kEF, [] { return maker(Op::kEF); }, workload());     \
  }                                                                       \
  void BM_##row##_AF_open_problem(benchmark::State& s) {                 \
    run_cell(s, Op::kAF, [] { return maker(Op::kAF); }, small_workload()); \
  }                                                                       \
  void BM_##row##_EG(benchmark::State& s) {                              \
    run_cell(s, Op::kEG, [] { return maker(Op::kEG); }, workload());     \
  }                                                                       \
  void BM_##row##_AG(benchmark::State& s) {                              \
    run_cell(s, Op::kAG, [] { return maker(Op::kAG); }, workload());     \
  }                                                                       \
  BENCHMARK(BM_##row##_EF);                                               \
  BENCHMARK(BM_##row##_AF_open_problem);                                  \
  BENCHMARK(BM_##row##_EG);                                               \
  BENCHMARK(BM_##row##_AG)

HBCT_CELL_PER_OP(linear, linear_pred_for);
HBCT_CELL_PER_OP(regular, regular_pred_for);

#undef HBCT_CELL_PER_OP

// ---- Observer-independent row -------------------------------------------------

void BM_oi_EF(benchmark::State& s) { run_cell(s, Op::kEF, oi_pred, workload()); }
void BM_oi_AF(benchmark::State& s) { run_cell(s, Op::kAF, oi_pred, workload()); }
BENCHMARK(BM_oi_EF);
BENCHMARK(BM_oi_AF);

// EG/AG of an OI predicate are NP-/co-NP-complete (Theorems 5/6): run the
// reduction gadget at a fixed small size here.
void BM_oi_EG_hardness_gadget(benchmark::State& state) {
  Rng rng(7);
  Cnf f = Cnf::random(10, 30, 3, rng);
  Reduction r = reduce_sat_to_eg(f);
  DetectResult last;
  for (auto _ : state) last = detect_eg_dfs(r.computation, *r.predicate);
  report(state, last);
}
BENCHMARK(BM_oi_EG_hardness_gadget);

void BM_oi_AG_hardness_gadget(benchmark::State& state) {
  Rng rng(9);
  Dnf f = Dnf::random(10, 24, 2, rng);
  Reduction r = reduce_tautology_to_ag(f);
  DetectResult last;
  for (auto _ : state) last = detect_ag_dfs(r.computation, *r.predicate);
  report(state, last);
}
BENCHMARK(BM_oi_AG_hardness_gadget);

// ---- Arbitrary row (explicit search on a small computation) --------------------

const Computation& small_workload() {
  static const Computation c = [] {
    GenOptions opt;
    opt.num_procs = 4;
    opt.events_per_proc = 5;
    opt.seed = 4;
    return generate_random(opt);
  }();
  return c;
}

void BM_arbitrary_EF(benchmark::State& s) {
  run_cell(s, Op::kEF, arbitrary_pred, small_workload());
}
void BM_arbitrary_AF(benchmark::State& s) {
  run_cell(s, Op::kAF, arbitrary_pred, small_workload());
}
void BM_arbitrary_EG(benchmark::State& s) {
  run_cell(s, Op::kEG, arbitrary_pred, small_workload());
}
void BM_arbitrary_AG(benchmark::State& s) {
  run_cell(s, Op::kAG, arbitrary_pred, small_workload());
}
BENCHMARK(BM_arbitrary_EF);
BENCHMARK(BM_arbitrary_AF);
BENCHMARK(BM_arbitrary_EG);
BENCHMARK(BM_arbitrary_AG);

// ---- Wide workload (n = 16): the hot-path acceptance cells ---------------------
//
// The lattice-walk algorithms (A1 retreat walk, A2 irreducible scan, A3
// frontier sweep) and the Garg-Waldecker conjunctive scan are the cells
// whose per-step cost scales with n; this block pins them on a 16-process
// computation so per-step improvements are measurable above fixed overhead.

constexpr std::int32_t kBigProcs = 16;
constexpr std::int32_t kBigEventsPerProc = 120;

const Computation& big_workload() {
  static const Computation c = [] {
    GenOptions opt;
    opt.num_procs = kBigProcs;
    opt.events_per_proc = kBigEventsPerProc;
    opt.num_vars = 2;
    opt.seed = 1616;
    return generate_random(opt);
  }();
  return c;
}

// Linear-but-not-conjunctive and satisfied everywhere, so EG runs the full
// A1 retreat walk and AG the full A2 meet-irreducible scan.
PredicatePtr big_linear_pred() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kBigProcs; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));  // always true
  return make_and(make_conjunctive(std::move(ls)),
                  channel_bound_le(0, 1, 1 << 20));
}

// Each process waits for a different variable value, so first-true
// positions scatter across the computation and the Garg-Waldecker weak
// scan pays long position scans plus clock-driven repair rounds.
PredicatePtr big_gw_pred() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kBigProcs; ++i)
    ls.push_back(var_cmp(i, i % 2 == 0 ? "v0" : "v1", Cmp::kGe, 8));
  return make_conjunctive(std::move(ls));
}

// q's least satisfying cut sits near the top of the lattice, so A3 pays a
// full Chase-Garg climb plus the frontier fan-out over long prefixes.
PredicatePtr big_until_q() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kBigProcs; ++i)
    ls.push_back(progress_ge(i, kBigEventsPerProc - 20));
  return make_conjunctive(std::move(ls));
}

PredicatePtr big_true_conjunctive() {
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < kBigProcs; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));  // always true
  return make_conjunctive(std::move(ls));
}

void BM_n16_A1_EG_linear(benchmark::State& s) {
  run_cell(s, Op::kEG, big_linear_pred, big_workload());
}
BENCHMARK(BM_n16_A1_EG_linear);

void BM_n16_A2_AG_linear(benchmark::State& s) {
  run_cell(s, Op::kAG, big_linear_pred, big_workload());
}
BENCHMARK(BM_n16_A2_AG_linear);

void BM_n16_A3_EU(benchmark::State& state) {
  const Computation& c = big_workload();
  auto p = as_conjunctive(big_true_conjunctive());
  PredicatePtr q = big_until_q();
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q);
  report(state, last);
}
BENCHMARK(BM_n16_A3_EU);

void BM_n16_GW_EF_conjunctive(benchmark::State& s) {
  run_cell(s, Op::kEF, big_gw_pred, big_workload());
}
BENCHMARK(BM_n16_GW_EF_conjunctive);

// ---- The until operators (Section 7, "this paper") -----------------------------

void BM_until_EU_A3(benchmark::State& state) {
  const Computation& c = workload();
  auto p = as_conjunctive(conjunctive_pred());
  PredicatePtr q = make_and(all_channels_empty(),
                            PredicatePtr(var_cmp(0, "v0", Cmp::kGe, 3)));
  DetectResult last;
  for (auto _ : state) last = detect_eu(c, *p, *q);
  report(state, last);
}
BENCHMARK(BM_until_EU_A3);

void BM_until_AU_disjunctive(benchmark::State& state) {
  const Computation& c = workload();
  auto p = as_disjunctive(disjunctive_pred());
  std::vector<LocalPredicatePtr> qs;
  for (ProcId i = 0; i < kProcs; ++i)
    qs.push_back(var_cmp(i, "v1", Cmp::kGe, 2));
  auto q = make_disjunctive(std::move(qs));
  DetectResult last;
  for (auto _ : state) last = detect_au_disjunctive(c, *p, *q);
  report(state, last);
}
BENCHMARK(BM_until_AU_disjunctive);

// ---- Lint-only overhead --------------------------------------------------------
//
// DispatchOptions::audit = kLintOnly attaches the dispatch plan and the
// pre-flight diagnostics to every result. The pair below runs the same four
// polynomial detections with the analysis off and on; the acceptance bar is
// <1% overhead, i.e. the two times should be indistinguishable since the
// lint costs O(|formula|) against detections that walk the computation.

void run_all_unary(benchmark::State& state, const DispatchOptions& opt) {
  const Computation& c = workload();
  PredicatePtr p = conjunctive_pred();
  DetectResult last;
  for (auto _ : state)
    for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG})
      last = detect(c, op, p, nullptr, opt);
  report(state, last);
}

void BM_audit_off(benchmark::State& state) { run_all_unary(state, {}); }
BENCHMARK(BM_audit_off);

void BM_audit_lint_only(benchmark::State& state) {
  DispatchOptions opt;
  opt.audit = AuditMode::kLintOnly;
  run_all_unary(state, opt);
}
BENCHMARK(BM_audit_lint_only);

// ---- Tracer overhead -----------------------------------------------------------
//
// Same shape as the audit pair. BM_trace_off exercises the compiled-in but
// disabled tracer: every instrumentation site tests one null pointer and
// falls through (the <=2% acceptance bar — compare against BM_audit_off,
// which is byte-for-byte the same work, and against the pre-observability
// baseline recorded in EXPERIMENTS.md). BM_trace_on pays for real spans,
// per-phase histograms, and the span-tree retained on the result.

void BM_trace_off(benchmark::State& state) { run_all_unary(state, {}); }
BENCHMARK(BM_trace_off);

void BM_trace_on(benchmark::State& state) {
  DispatchOptions opt;
  opt.trace = true;
  run_all_unary(state, opt);
}
BENCHMARK(BM_trace_on);

// ---- BENCH_table1.json ---------------------------------------------------------
//
// A compact self-timed pass over the polynomial rows plus the until
// operators; the EF-of-conjunctive row re-runs traced and embeds its full
// hbct.report/1 document so the artifact carries one complete span tree.

benchio::BenchRow timed_cell(const std::string& name, Op op,
                             const PredicatePtr& p, const Computation& c,
                             int iters, bool traced = false) {
  benchio::BenchRow row;
  row.name = name;
  DispatchOptions opt;
  DetectResult last;
  row.ns = benchio::time_ns(
      iters, [&] { last = detect(c, op, p, nullptr, opt); });
  row.label = last.algorithm + (last.holds() ? " -> true" : " -> false");
  if (traced) {
    opt.trace = true;
    last = detect(c, op, p, nullptr, opt);
    row.report = report_json(last);
  }
  return row;
}

bool emit_table1_json(const std::string& path) {
  constexpr int kIters = 20;
  const Computation& c = workload();
  std::vector<benchio::BenchRow> rows;
  struct RowSpec {
    const char* row;
    PredicatePtr (*make)();
  };
  const RowSpec specs[] = {{"conjunctive", conjunctive_pred},
                           {"disjunctive", disjunctive_pred},
                           {"stable", stable_pred}};
  const struct {
    const char* name;
    Op op;
  } ops[] = {{"EF", Op::kEF}, {"AF", Op::kAF}, {"EG", Op::kEG},
             {"AG", Op::kAG}};
  for (const RowSpec& spec : specs)
    for (const auto& o : ops)
      rows.push_back(timed_cell(std::string(spec.row) + "." + o.name, o.op,
                                spec.make(), c, kIters,
                                /*traced=*/spec.make == conjunctive_pred &&
                                    o.op == Op::kEF));
  for (const auto& o : ops)
    rows.push_back(timed_cell(std::string("linear.") + o.name, o.op,
                              linear_pred_for(o.op),
                              o.op == Op::kAF ? small_workload() : c, kIters));

  // The n = 16 acceptance cells: A1/A2 walks, the A3 frontier sweep, and
  // the Garg-Waldecker conjunctive scan on the wide workload. These are the
  // rows tools/bench_diff.py and the EXPERIMENTS.md A/B track.
  {
    const Computation& big = big_workload();
    rows.push_back(timed_cell("n16.A1.EG_linear", Op::kEG, big_linear_pred(),
                              big, kIters));
    rows.push_back(timed_cell("n16.A2.AG_linear", Op::kAG, big_linear_pred(),
                              big, kIters));
    benchio::BenchRow eu;
    eu.name = "n16.A3.EU";
    auto p = as_conjunctive(big_true_conjunctive());
    PredicatePtr q = big_until_q();
    DetectResult last;
    eu.ns = benchio::time_ns(kIters, [&] { last = detect_eu(big, *p, *q); });
    eu.label = last.algorithm + (last.holds() ? " -> true" : " -> false");
    rows.push_back(std::move(eu));
    rows.push_back(timed_cell("n16.GW.EF_conjunctive", Op::kEF,
                              big_gw_pred(), big, kIters));
  }

  {
    benchio::BenchRow eu;
    eu.name = "until.EU";
    auto p = as_conjunctive(conjunctive_pred());
    PredicatePtr q = make_and(all_channels_empty(),
                              PredicatePtr(var_cmp(0, "v0", Cmp::kGe, 3)));
    DetectResult last;
    eu.ns = benchio::time_ns(kIters, [&] { last = detect_eu(c, *p, *q); });
    eu.label = last.algorithm + (last.holds() ? " -> true" : " -> false");
    rows.push_back(std::move(eu));
  }
  {
    benchio::BenchRow au;
    au.name = "until.AU";
    auto p = as_disjunctive(disjunctive_pred());
    std::vector<LocalPredicatePtr> qs;
    for (ProcId i = 0; i < kProcs; ++i)
      qs.push_back(var_cmp(i, "v1", Cmp::kGe, 2));
    auto q = make_disjunctive(std::move(qs));
    DetectResult last;
    au.ns = benchio::time_ns(
        kIters, [&] { last = detect_au_disjunctive(c, *p, *q); });
    au.label = last.algorithm + (last.holds() ? " -> true" : " -> false");
    rows.push_back(std::move(au));
  }

  // The disabled-tracer A/B on the artifact too, so EXPERIMENTS.md numbers
  // can be regenerated from the JSON alone.
  for (const bool traced : {false, true}) {
    benchio::BenchRow row;
    row.name = traced ? "overhead.trace_on" : "overhead.trace_off";
    DispatchOptions opt;
    opt.trace = traced;
    PredicatePtr p = conjunctive_pred();
    DetectResult last;
    row.ns = benchio::time_ns(kIters, [&] {
      for (Op op : {Op::kEF, Op::kAF, Op::kEG, Op::kAG})
        last = detect(c, op, p, nullptr, opt);
    });
    row.label = "EF+AF+EG+AG of conjunctive";
    rows.push_back(std::move(row));
  }

  return benchio::write_bench_json(path, "table1", rows);
}

}  // namespace
}  // namespace hbct

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* out = std::getenv("HBCT_BENCH_JSON");
  return hbct::emit_table1_json(out != nullptr ? out : "BENCH_table1.json")
             ? 0
             : 1;
}
