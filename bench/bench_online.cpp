// Online monitoring overhead: cost per streamed event with watches armed,
// against (a) bare online clock maintenance and (b) offline batch detection
// after the fact.
#include <benchmark/benchmark.h>

#include "hbct.h"

namespace hbct {
namespace {

Computation make_ref(std::int32_t procs, std::int32_t events) {
  GenOptions opt;
  opt.num_procs = procs;
  opt.events_per_proc = events;
  opt.num_vars = 2;
  opt.p_send = 0.3;
  opt.seed = 77;
  return generate_random(opt);
}

template <typename Sink>
void stream_into(const Computation& ref, Sink&& sink) {
  std::vector<MsgId> msg_map(static_cast<std::size_t>(ref.num_messages()),
                             kNoMsg);
  for (const EventId& eid : ref.linearization()) {
    const Event& ev = ref.event(eid);
    switch (ev.kind) {
      case EventKind::kInternal:
        sink.internal(eid.proc);
        break;
      case EventKind::kSend:
        msg_map[static_cast<std::size_t>(ev.msg)] = sink.send(eid.proc, ev.peer);
        break;
      case EventKind::kReceive:
        sink.receive(eid.proc, msg_map[static_cast<std::size_t>(ev.msg)]);
        break;
    }
    for (const Assignment& a : ev.writes)
      sink.write(eid.proc, ref.var_name(a.var), a.value);
  }
}

void BM_online_appender_only(benchmark::State& state) {
  Computation ref = make_ref(6, static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    OnlineAppender app(ref.num_procs());
    for (VarId v = 0; v < ref.num_vars(); ++v) app.var(ref.var_name(v));
    stream_into(ref, app);
    benchmark::DoNotOptimize(app.computation());
  }
  state.SetItemsProcessed(state.iterations() * ref.total_events());
}
BENCHMARK(BM_online_appender_only)->Arg(64)->Arg(512);

void BM_online_monitor_with_watches(benchmark::State& state) {
  Computation ref = make_ref(6, static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    OnlineMonitor m(ref.num_procs());
    for (VarId v = 0; v < ref.num_vars(); ++v) m.var(ref.var_name(v));
    // Arm a mix of watches: two conjunctive, one invariant, one stable.
    m.watch_possibly(make_conjunctive({var_cmp(0, "v0", Cmp::kEq, 4),
                                       var_cmp(1, "v0", Cmp::kEq, 4)}));
    m.watch_possibly(make_conjunctive({var_cmp(2, "v1", Cmp::kGe, 3),
                                       var_cmp(3, "v1", Cmp::kGe, 3)}));
    m.watch_invariant(make_disjunctive({var_cmp(0, "v0", Cmp::kLe, 8),
                                        var_cmp(4, "v1", Cmp::kLe, 8)}));
    m.watch_stable(make_terminated());
    stream_into(ref, m);
    m.finish();
    benchmark::DoNotOptimize(m.poll());
  }
  state.SetItemsProcessed(state.iterations() * ref.total_events());
}
BENCHMARK(BM_online_monitor_with_watches)->Arg(64)->Arg(512);

void BM_offline_batch_equivalent(benchmark::State& state) {
  // The batch route: build the computation once, then run the offline
  // detections the watches above correspond to.
  Computation ref = make_ref(6, static_cast<std::int32_t>(state.range(0)));
  auto p1 = make_conjunctive({var_cmp(0, "v0", Cmp::kEq, 4),
                              var_cmp(1, "v0", Cmp::kEq, 4)});
  auto p2 = make_conjunctive({var_cmp(2, "v1", Cmp::kGe, 3),
                              var_cmp(3, "v1", Cmp::kGe, 3)});
  auto inv = make_disjunctive({var_cmp(0, "v0", Cmp::kLe, 8),
                               var_cmp(4, "v1", Cmp::kLe, 8)});
  for (auto _ : state) {
    bool r = detect_ef_conjunctive(ref, *p1).holds();
    r ^= detect_ef_conjunctive(ref, *p2).holds();
    r ^= detect_ag_disjunctive(ref, *inv).holds();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * ref.total_events());
}
BENCHMARK(BM_offline_batch_equivalent)->Arg(64)->Arg(512);

}  // namespace
}  // namespace hbct

BENCHMARK_MAIN();
